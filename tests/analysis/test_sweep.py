"""Tests for the ratio sweep harness."""

import numpy as np
import pytest

from repro.analysis.sweep import (
    METRICS,
    SweepConfig,
    paper_grid,
    quick_grid,
    ratio_sweep,
)
from repro.core.prio import prio_schedule
from repro.workloads.airsn import airsn


@pytest.fixture(scope="module")
def tiny_sweep():
    dag = airsn(12)
    order = prio_schedule(dag).schedule
    config = SweepConfig(mu_bits=(1.0,), mu_bss=(2.0, 8.0), p=6, q=2, seed=1)
    return ratio_sweep(dag, order, config, "airsn-12")


class TestGrids:
    def test_paper_grid_dimensions(self):
        mu_bits, mu_bss = paper_grid()
        assert len(mu_bits) == 7 and len(mu_bss) == 17
        assert mu_bits[0] == 1e-3 and mu_bits[-1] == 1e3
        assert mu_bss[0] == 1 and mu_bss[-1] == 65536

    def test_quick_grid_subset_of_regimes(self):
        mu_bits, mu_bss = quick_grid()
        assert min(mu_bits) < 1 < max(mu_bits)
        assert min(mu_bss) == 1

    def test_paper_config(self):
        cfg = SweepConfig.paper()
        assert cfg.p == 300 and cfg.q == 300
        assert len(cfg.mu_bits) == 7

    def test_paper_config_overrides(self):
        cfg = SweepConfig.paper(p=5)
        assert cfg.p == 5 and cfg.q == 300


class TestRatioSweep:
    def test_cell_count(self, tiny_sweep):
        assert len(tiny_sweep.cells) == 2

    def test_all_metrics_present(self, tiny_sweep):
        for cell in tiny_sweep.cells:
            assert set(cell.ratios) == set(METRICS)

    def test_cell_lookup(self, tiny_sweep):
        cell = tiny_sweep.cell(1.0, 8.0)
        assert cell.mu_bs == 8.0
        with pytest.raises(KeyError):
            tiny_sweep.cell(2.0, 8.0)

    def test_execution_ratio_is_positive(self, tiny_sweep):
        for cell in tiny_sweep.cells:
            stats = cell.ratios["execution_time"]
            assert stats is not None and stats.median > 0

    def test_best_cell(self, tiny_sweep):
        best = tiny_sweep.best_cell()
        medians = [
            c.ratios["execution_time"].median for c in tiny_sweep.cells
        ]
        assert best.ratios["execution_time"].median == min(medians)

    def test_reproducible(self):
        dag = airsn(8)
        order = prio_schedule(dag).schedule
        cfg = SweepConfig(mu_bits=(1.0,), mu_bss=(4.0,), p=4, q=2, seed=9)
        a = ratio_sweep(dag, order, cfg, "x")
        b = ratio_sweep(dag, order, cfg, "x")
        sa = a.cells[0].ratios["execution_time"]
        sb = b.cells[0].ratios["execution_time"]
        assert sa.median == sb.median and sa.ci_low == sb.ci_low

    def test_paired_streams_reduce_variance(self):
        dag = airsn(20)
        order = prio_schedule(dag).schedule
        base = dict(mu_bits=(1.0,), mu_bss=(8.0,), p=10, q=2, seed=4)
        independent = ratio_sweep(
            dag, order, SweepConfig(**base), "x"
        ).cells[0].ratios["execution_time"]
        paired = ratio_sweep(
            dag, order, SweepConfig(**base, paired=True), "x"
        ).cells[0].ratios["execution_time"]
        width_ind = independent.ci_high - independent.ci_low
        width_pair = paired.ci_high - paired.ci_low
        assert width_pair < width_ind

    def test_progress_callback(self):
        dag = airsn(6)
        order = prio_schedule(dag).schedule
        cfg = SweepConfig(mu_bits=(1.0,), mu_bss=(2.0,), p=2, q=1)
        calls = []
        ratio_sweep(
            dag, order, cfg, "x", progress=lambda d, t: calls.append((d, t))
        )
        assert calls == [(1, 1)]


class TestFailureAndLiveSweeps:
    def test_failure_params_reach_the_cells(self):
        dag = airsn(8)
        order = prio_schedule(dag).schedule
        base = dict(mu_bits=(1.0,), mu_bss=(4.0,), p=6, q=2, seed=7)
        clean = ratio_sweep(dag, order, SweepConfig(**base), "x")
        churned = ratio_sweep(
            dag, order, SweepConfig(**base, failure_prob=0.4), "x"
        )
        r_clean = clean.cells[0].ratios["execution_time"]
        r_churned = churned.cells[0].ratios["execution_time"]
        # Same seeds, different model: churn must actually change the
        # sampled ratios, or the knob never reached the cells.
        assert r_clean.mean != r_churned.mean

    def test_live_sweep_matches_static_without_failures(self):
        """With no failures, a PRIO-live session completes jobs in an
        order whose every remnant re-prioritization is consistent with
        the static PRIO schedule — the sweep runs and produces finite
        ratios under common random numbers."""
        dag = airsn(8)
        order = prio_schedule(dag).schedule
        base = dict(mu_bits=(1.0,), mu_bss=(4.0,), p=6, q=2, seed=7)
        live = ratio_sweep(
            dag, order, SweepConfig(**base, live=True), "x"
        )
        ratio = live.cells[0].ratios["execution_time"]
        assert np.isfinite(ratio.median) and ratio.median > 0

    def test_live_sweep_with_failures_runs(self):
        dag = airsn(8)
        order = prio_schedule(dag).schedule
        cfg = SweepConfig(
            mu_bits=(1.0,), mu_bss=(4.0,), p=6, q=2, seed=7,
            live=True, failure_prob=0.3, straggler_prob=0.2,
        )
        result = ratio_sweep(dag, order, cfg, "x")
        ratio = result.cells[0].ratios["execution_time"]
        assert np.isfinite(ratio.median) and ratio.median > 0

    def test_live_sweep_rejects_compiled_dag(self):
        from repro.sim.compile import CompiledDag

        dag = airsn(8)
        order = prio_schedule(dag).schedule
        cfg = SweepConfig(mu_bits=(1.0,), mu_bss=(4.0,), p=2, q=1,
                          live=True)
        with pytest.raises(TypeError, match="live sweeps"):
            ratio_sweep(CompiledDag.from_dag(dag), order, cfg, "x")
