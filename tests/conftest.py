"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.dag.graph import Dag, DagBuilder

try:
    from hypothesis import HealthCheck, settings

    # "ci" pins the property-based suite to a reproducible run (fixed
    # derandomized examples, no deadline flakiness on loaded runners);
    # "dev" explores harder locally.  Select with HYPOTHESIS_PROFILE.
    settings.register_profile(
        "ci",
        derandomize=True,
        deadline=None,
        max_examples=60,
        suppress_health_check=[HealthCheck.too_slow],
    )
    settings.register_profile("dev", max_examples=200, deadline=None)
    settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "ci"))
except ImportError:  # pragma: no cover - hypothesis is an optional dep
    pass


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(1234)


@pytest.fixture
def fig3_dag() -> Dag:
    """The 5-job example of the paper's Fig. 3: a->b, c->d, c->e."""
    b = DagBuilder()
    for name in "abcde":
        b.add_job(name)
    b.add_dependency("a", "b")
    b.add_dependency("c", "d")
    b.add_dependency("c", "e")
    return b.build()


@pytest.fixture
def diamond() -> Dag:
    """0 -> {1, 2} -> 3."""
    return Dag(4, [(0, 1), (0, 2), (1, 3), (2, 3)])


@pytest.fixture
def diamond_with_shortcut() -> Dag:
    """Diamond plus the shortcut arc 0 -> 3."""
    return Dag(4, [(0, 1), (0, 2), (1, 3), (2, 3), (0, 3)])


def labels_of(dag: Dag, order) -> list[str]:
    return [dag.label(u) for u in order]


def random_small_dag(rng: np.random.Generator, max_n: int = 9) -> Dag:
    """A random dag small enough for brute-force IC-optimality checks."""
    n = int(rng.integers(1, max_n + 1))
    prob = float(rng.uniform(0.1, 0.6))
    arcs = [
        (i, j)
        for i in range(n)
        for j in range(i + 1, n)
        if rng.random() < prob
    ]
    return Dag(n, arcs)
