"""Test package."""
