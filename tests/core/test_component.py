"""Tests for per-component scheduling (Step 3)."""

import pytest

from repro.core.component import outdegree_order, schedule_component
from repro.core.decompose import decompose
from repro.dag.builders import chain, complete_bipartite
from repro.dag.graph import Dag
from repro.theory.families import w_dag


class TestOutdegreeOrder:
    def test_orders_by_descending_outdegree(self):
        # 0 -> 2, 1 -> {2, 3}: source 1 has higher out-degree.
        d = Dag(4, [(0, 2), (1, 2), (1, 3)])
        assert outdegree_order(d) == [1, 0]

    def test_respects_precedence(self):
        # High-out-degree node behind a low-out-degree parent must wait.
        d = Dag(5, [(0, 1), (1, 2), (1, 3), (1, 4)])
        order = outdegree_order(d)
        assert order.index(0) < order.index(1)

    def test_excludes_sinks(self, diamond):
        assert 3 not in outdegree_order(diamond)

    def test_custom_weight(self):
        d = Dag(4, [(0, 2), (1, 2), (1, 3)])
        # Invert the weights: source 0 goes first despite lower out-degree.
        assert outdegree_order(d, weight=[5, 1, 0, 0]) == [0, 1]

    def test_tie_break_by_id(self):
        d = Dag(4, [(0, 2), (1, 3)])
        assert outdegree_order(d) == [0, 1]


class TestScheduleComponent:
    def _single_component(self, dag):
        dec = decompose(dag)
        assert dec.n_components == 1
        return dec.components[0]

    def test_catalog_block_uses_family(self):
        d = w_dag(3, 2).dag
        sc = schedule_component(d, self._single_component(d))
        assert sc.family == "(3,2)-W"
        assert set(sc.schedule) == set(d.sources())

    def test_catalog_disabled_falls_back(self):
        d = w_dag(3, 2).dag
        sc = schedule_component(d, self._single_component(d), use_catalog=False)
        assert sc.family is None
        assert set(sc.schedule) == set(d.sources())

    def test_profile_length_is_nonsinks_plus_one(self):
        d = complete_bipartite(3, 2)
        sc = schedule_component(d, self._single_component(d))
        assert len(sc.profile) == 4
        assert sc.profile[0] == 3

    def test_profile_key_stable(self):
        d = complete_bipartite(2, 2)
        comp = self._single_component(d)
        a = schedule_component(d, comp)
        b = schedule_component(d, comp)
        assert a.profile_key == b.profile_key

    def test_global_vs_local_outdegree(self):
        # Non-sink 1 has one child inside the block but two in the full dag.
        d = Dag(6, [(0, 2), (1, 2), (0, 3), (2, 4), (3, 5), (1, 4)])
        dec = decompose(d)
        comp = dec.components[0]
        glob = schedule_component(d, comp, outdegree_scope="global")
        loc = schedule_component(d, comp, outdegree_scope="local")
        assert set(glob.schedule) == set(loc.schedule)

    def test_invalid_scope_rejected(self, diamond):
        dec = decompose(diamond)
        with pytest.raises(ValueError, match="outdegree_scope"):
            schedule_component(diamond, dec.components[0], outdegree_scope="x")

    def test_chain_pair_block(self):
        d = chain(2)
        sc = schedule_component(d, self._single_component(d))
        assert sc.schedule == (0,)
        assert sc.profile.tolist() == [1, 1]

    def test_index_property(self, diamond):
        dec = decompose(diamond)
        sc = schedule_component(diamond, dec.components[0])
        assert sc.index == dec.components[0].index
