"""Tests for the C(s)-closure decomposition (Step 2)."""

import numpy as np
import pytest

from repro.core.decompose import decompose
from repro.dag.builders import chain, complete_bipartite, fork_join
from repro.dag.graph import Dag
from repro.dag.transitive import remove_shortcuts
from repro.theory.families import w_dag


def check_invariants(dag, dec):
    """Structural invariants every decomposition must satisfy."""
    scheduled = [u for comp in dec.components for u in comp.nonsinks]
    # Every non-sink is scheduled exactly once; sinks never are.
    assert sorted(scheduled) == dag.non_sinks()
    assert all(dec.comp_of[u] == -1 for u in dag.sinks())
    for comp in dec.components:
        for u in comp.nonsinks:
            assert dec.comp_of[u] == comp.index
        # Component sinks really have no children inside the component.
        members = set(comp.nodes)
        for u in comp.shared_sinks + comp.global_sinks:
            assert not any(c in members for c in dag.children(u))
        for u in comp.nonsinks:
            assert any(c in members for c in dag.children(u))
        # Global sinks are sinks of the dag; shared sinks are not.
        assert all(dag.is_sink(u) for u in comp.global_sinks)
        assert all(not dag.is_sink(u) for u in comp.shared_sinks)
        # Bipartite flag consistent with the induced subgraph.
        sub, _ = dag.induced_subgraph(comp.nodes)
        if comp.is_bipartite and comp.nonsinks:
            assert sub.is_bipartite_two_level()
    # Superdag acyclic and compatible with detachment order.
    for i, kids in enumerate(dec.super_children):
        for j in kids:
            assert i < j
    # Superdag covers every cross-component dependency.
    for u, v in dag.arcs():
        ci, cj = dec.comp_of[u], dec.comp_of[v]
        if ci != -1 and cj != -1 and ci != cj:
            assert cj in dec.super_children[ci]


class TestSimpleShapes:
    def test_chain_decomposes_into_pair_blocks(self):
        d = chain(4)
        dec = decompose(d)
        check_invariants(d, dec)
        assert dec.n_components == 3
        assert all(c.is_bipartite for c in dec.components)

    def test_fig3(self, fig3_dag):
        dec = decompose(fig3_dag)
        check_invariants(fig3_dag, dec)
        assert dec.n_components == 2
        sizes = sorted(c.size for c in dec.components)
        assert sizes == [2, 3]
        # Independent blocks: no superdag arcs.
        assert all(not kids for kids in dec.super_children)

    def test_single_node(self):
        d = Dag(1, [])
        dec = decompose(d)
        assert dec.n_components == 1
        assert dec.components[0].global_sinks == (0,)
        assert dec.components[0].nonsinks == ()

    def test_empty(self):
        dec = decompose(Dag(0, []))
        assert dec.n_components == 0

    def test_bipartite_block_detached_whole(self):
        d = complete_bipartite(3, 2)
        dec = decompose(d)
        check_invariants(d, dec)
        assert dec.n_components == 1
        assert dec.components[0].is_bipartite

    def test_fork_join_chains_superdag(self):
        d = fork_join(3)
        dec = decompose(d)
        check_invariants(d, dec)
        assert dec.n_components == 2
        assert dec.super_children[0] == [1]

    def test_w_dag_single_block(self):
        d = w_dag(4, 2).dag
        dec = decompose(d)
        check_invariants(d, dec)
        assert dec.n_components == 1


class TestSharedSinks:
    def test_shared_sink_links_components(self):
        # 0 -> 1 -> 2: middle node is sink of block {0,1}, source of {1,2}.
        d = chain(3)
        dec = decompose(d)
        first, second = dec.components
        assert first.shared_sinks == (1,)
        assert 1 in second.nonsinks
        assert dec.super_children[0] == [1]

    def test_node_in_two_components(self):
        d = chain(3)
        dec = decompose(d)
        # Node 1 appears in both components but is scheduled only in one.
        appears = [c.index for c in dec.components if 1 in c.nodes]
        assert len(appears) == 2
        assert dec.comp_of[1] == dec.components[1].index


class TestNonBipartite:
    def test_crossed_forks_form_one_component(self):
        # a->p->t, b->t, b->q->u, a->u (the non-peelable entanglement).
        d = Dag(6, [(0, 2), (2, 4), (1, 4), (1, 3), (3, 5), (0, 5)])
        dec = decompose(d)
        check_invariants(d, dec)
        assert dec.n_components == 1
        assert not dec.components[0].is_bipartite
        assert dec.components[0].size == 6

    def test_unequal_depth_join_peels_bipartite(self):
        # q->p, p->t, s->t: C(q) = {q,p} is bipartite and peels first;
        # then {p, s, t} forms a bipartite block.
        d = Dag(4, [(0, 1), (1, 3), (2, 3)])
        dec = decompose(d)
        check_invariants(d, dec)
        assert dec.n_components == 2
        assert all(c.is_bipartite for c in dec.components)

    def test_cross_component_arcs_in_superdag_for_interior_nodes(self):
        # Interior node of a non-bipartite component with a child outside.
        d = Dag(
            8,
            [
                (0, 2), (2, 4), (1, 4), (1, 3), (3, 5), (0, 5),
                # interior node 2 also feeds 6, which leads to sink 7
                (2, 6), (6, 7),
            ],
        )
        dec = decompose(d)
        check_invariants(d, dec)


class TestRandomized:
    @pytest.mark.parametrize("seed", range(8))
    def test_invariants_on_random_dags(self, seed):
        rng = np.random.default_rng(seed)
        from tests.conftest import random_small_dag

        for _ in range(10):
            d = random_small_dag(rng, max_n=12)
            reduced, _ = remove_shortcuts(d)
            dec = decompose(reduced)
            check_invariants(reduced, dec)

    def test_layered_random(self, rng):
        from repro.dag.builders import layered_random

        d = layered_random([4, 6, 5, 3], 0.3, rng)
        reduced, _ = remove_shortcuts(d)
        dec = decompose(reduced)
        check_invariants(reduced, dec)
