"""Tests for the FIFO baseline schedule."""

import numpy as np
import pytest

from repro.core.fifo import fifo_schedule
from repro.dag.builders import chain, fork
from repro.dag.graph import Dag
from repro.dag.validate import is_valid_schedule


class TestFifoSchedule:
    def test_sources_first_in_id_order(self, fig3_dag):
        order = fifo_schedule(fig3_dag)
        assert [fig3_dag.label(u) for u in order[:2]] == ["a", "c"]

    def test_full_fig3_order(self, fig3_dag):
        # a and c eligible at start; executing a frees b, executing c
        # frees d then e.
        assert [fig3_dag.label(u) for u in fifo_schedule(fig3_dag)] == list(
            "acbde"
        )

    def test_is_valid(self, rng):
        from tests.conftest import random_small_dag

        for _ in range(20):
            d = random_small_dag(rng, max_n=14)
            assert is_valid_schedule(d, fifo_schedule(d))

    def test_chain(self):
        assert fifo_schedule(chain(4)) == [0, 1, 2, 3]

    def test_fork_children_in_adjacency_order(self):
        assert fifo_schedule(fork(3)) == [0, 1, 2, 3]

    def test_deterministic(self, rng):
        from tests.conftest import random_small_dag

        d = random_small_dag(rng)
        assert fifo_schedule(d) == fifo_schedule(d)

    def test_empty(self):
        assert fifo_schedule(Dag(0, [])) == []

    def test_bfs_not_dfs(self):
        # 0 -> 2 -> 4, 1 -> 3: FIFO interleaves by eligibility wave.
        d = Dag(5, [(0, 2), (2, 4), (1, 3)])
        assert fifo_schedule(d) == [0, 1, 2, 3, 4]
