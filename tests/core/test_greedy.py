"""Tests for the greedy combine phase (Step 6)."""

import numpy as np

from repro.core.component import schedule_component
from repro.core.decompose import decompose
from repro.core.greedy import greedy_combine, topological_combine
from repro.dag.builders import chain
from repro.dag.graph import Dag
from repro.dag.transitive import remove_shortcuts


def combine_of(dag, mode="greedy"):
    dec = decompose(dag)
    scheduled = [schedule_component(dag, c) for c in dec.components]
    fn = greedy_combine if mode == "greedy" else topological_combine
    return dec, scheduled, fn(dec, scheduled)


class TestGreedyCombine:
    def test_fig3_prefers_the_two_child_block(self, fig3_dag):
        dec, scheduled, result = combine_of(fig3_dag)
        first = result.component_order[0]
        # The block scheduling job c (two children) must go first.
        assert fig3_dag.id_of("c") in scheduled[first].schedule
        labels = [fig3_dag.label(u) for u in result.nonsink_schedule]
        assert labels == ["c", "a"]

    def test_respects_superdag_precedence(self):
        d = chain(5)
        _, _, result = combine_of(d)
        assert result.component_order == sorted(result.component_order)

    def test_emits_every_component_once(self, rng):
        from tests.conftest import random_small_dag

        for _ in range(15):
            d = random_small_dag(rng, max_n=12)
            reduced, _ = remove_shortcuts(d)
            dec, scheduled, result = combine_of(reduced)
            assert sorted(result.component_order) == list(
                range(dec.n_components)
            )

    def test_nonsink_schedule_is_concatenation(self, fig3_dag):
        dec, scheduled, result = combine_of(fig3_dag)
        expected = []
        for i in result.component_order:
            expected.extend(scheduled[i].schedule)
        assert result.nonsink_schedule == expected

    def test_tie_break_is_detachment_order(self):
        # Two identical independent blocks: emitted in index order.
        d = Dag(4, [(0, 2), (1, 3)])
        _, _, result = combine_of(d)
        assert result.component_order == [0, 1]

    def test_cache_is_exposed(self, fig3_dag):
        _, _, result = combine_of(fig3_dag)
        assert result.cache.misses >= 1

    def test_single_component(self):
        d = Dag(3, [(0, 2), (1, 2)])
        _, _, result = combine_of(d)
        assert result.component_order == [0]


class TestTopologicalCombine:
    def test_plain_order(self, fig3_dag):
        _, _, result = combine_of(fig3_dag, mode="topological")
        # Ignores priorities: block 0 (job a) first by detachment order.
        labels = [fig3_dag.label(u) for u in result.nonsink_schedule]
        assert labels == ["a", "c"]

    def test_valid_on_random(self, rng):
        from tests.conftest import random_small_dag

        for _ in range(10):
            d = random_small_dag(rng, max_n=10)
            reduced, _ = remove_shortcuts(d)
            dec, scheduled, result = combine_of(reduced, mode="topological")
            assert sorted(result.component_order) == list(
                range(dec.n_components)
            )
