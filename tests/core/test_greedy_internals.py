"""Unit tests for the combine phase's internal machinery."""

import numpy as np
import pytest

from repro.core.component import ScheduledComponent, schedule_component
from repro.core.decompose import Component, Decomposition, decompose
from repro.core.greedy import _ClassRegistry, greedy_combine
from repro.dag.graph import Dag


def make_sc(index, profile, schedule=()):
    comp = Component(
        index=index,
        nonsinks=tuple(schedule),
        shared_sinks=(),
        global_sinks=(),
        is_bipartite=True,
    )
    return ScheduledComponent(
        component=comp,
        schedule=tuple(schedule),
        profile=np.asarray(profile, dtype=np.int64),
        family=None,
    )


class TestClassRegistry:
    def test_groups_by_profile(self):
        reg = _ClassRegistry()
        reg.add(make_sc(0, [1, 2]))
        reg.add(make_sc(1, [1, 2]))
        reg.add(make_sc(2, [3, 3]))
        assert len(reg) == 3
        assert len(reg.heaps) == 2

    def test_pop_returns_lowest_index(self):
        reg = _ClassRegistry()
        reg.add(make_sc(5, [1, 2]))
        reg.add(make_sc(2, [1, 2]))
        key = next(iter(reg.heaps))
        assert reg.peek(key) == 2
        assert reg.pop(key) == 2
        assert reg.pop(key) == 5
        assert len(reg) == 0
        assert not reg.heaps  # class cleaned up when emptied

    def test_multiplicity(self):
        reg = _ClassRegistry()
        reg.add(make_sc(0, [1, 1]))
        reg.add(make_sc(1, [1, 1]))
        key = next(iter(reg.heaps))
        assert reg.multiplicity(key) == 2


class TestCombineOrderProperties:
    def _decomposed(self, dag):
        dec = decompose(dag)
        scheduled = [schedule_component(dag, c) for c in dec.components]
        return dec, scheduled

    def test_identical_blocks_keep_detachment_order(self):
        # Four identical independent 2-chains.
        d = Dag(8, [(0, 1), (2, 3), (4, 5), (6, 7)])
        dec, scheduled = self._decomposed(d)
        result = greedy_combine(dec, scheduled)
        assert result.component_order == [0, 1, 2, 3]

    def test_dominant_block_first_regardless_of_index(self):
        # Block with 3 children declared *after* two plain chains.
        d = Dag(9, [(0, 1), (2, 3), (4, 5), (4, 6), (4, 7), (4, 8)])
        dec, scheduled = self._decomposed(d)
        result = greedy_combine(dec, scheduled)
        wide = next(
            sc.index for sc in scheduled if 4 in sc.component.nonsinks
        )
        assert result.component_order[0] == wide

    def test_cache_shared_across_calls(self):
        from repro.theory.priority import PriorityCache

        d = Dag(8, [(0, 1), (2, 3), (4, 5), (6, 7)])
        dec, scheduled = self._decomposed(d)
        cache = PriorityCache()
        greedy_combine(dec, scheduled, cache=cache)
        first_misses = cache.misses
        greedy_combine(dec, scheduled, cache=cache)
        assert cache.misses == first_misses  # second run fully cached

    def test_empty_decomposition(self):
        dec = Decomposition(
            dag=Dag(0, []), components=[], comp_of=[],
            super_children=[], super_parents=[],
        )
        result = greedy_combine(dec, [])
        assert result.component_order == []
        assert result.nonsink_schedule == []
