"""Adversarial structures: shapes built to stress the pipeline.

Each case targets a specific weakness class: deep nesting, extreme
fan-in/out, shortcut ladders, interleaved rings, thousands of isolated
jobs, components that flip between the fast and general decomposition
paths.
"""

import numpy as np
import pytest

from repro.core.decompose import decompose
from repro.core.fifo import fifo_schedule
from repro.core.prio import prio_schedule
from repro.dag.graph import Dag
from repro.dag.transitive import find_shortcuts, remove_shortcuts
from repro.dag.validate import is_valid_schedule
from repro.theory.eligibility import eligibility_profile


def check(dag):
    result = prio_schedule(dag)
    assert is_valid_schedule(dag, result.schedule)
    profile = eligibility_profile(dag, result.schedule)
    assert profile[-1] == 0
    return result


class TestExtremeShapes:
    def test_deep_chain(self):
        check(Dag(2000, [(i, i + 1) for i in range(1999)], check_acyclic=False))

    def test_wide_star(self):
        n = 2000
        arcs = [(0, i) for i in range(1, n)]
        result = check(Dag(n, arcs, check_acyclic=False))
        assert result.schedule[0] == 0

    def test_wide_join(self):
        n = 2000
        arcs = [(i, n - 1) for i in range(n - 1)]
        check(Dag(n, arcs, check_acyclic=False))

    def test_all_isolated(self):
        result = check(Dag(500, []))
        # every job is a source-sink: scheduled in the final sinks phase.
        assert result.schedule == list(range(500))

    def test_binary_out_tree(self):
        arcs = [(i, 2 * i + 1) for i in range(511)] + [
            (i, 2 * i + 2) for i in range(511)
        ]
        check(Dag(1023, arcs, check_acyclic=False))

    def test_binary_in_tree(self):
        arcs = [(2 * i + 1, i) for i in range(511)] + [
            (2 * i + 2, i) for i in range(511)
        ]
        check(Dag(1023, arcs, check_acyclic=False))


class TestShortcutLadders:
    def test_full_shortcut_ladder(self):
        # chain 0->1->...->k plus every forward shortcut.
        k = 12
        arcs = [(i, j) for i in range(k) for j in range(i + 1, k + 1)]
        d = Dag(k + 1, arcs, check_acyclic=False)
        reduced, removed = remove_shortcuts(d)
        assert reduced.narcs == k
        assert len(removed) == d.narcs - k
        check(d)

    def test_shortcuts_do_not_change_prio_quality(self):
        k = 10
        clean = Dag(k + 1, [(i, i + 1) for i in range(k)], check_acyclic=False)
        laddered = Dag(
            k + 1,
            [(i, j) for i in range(k) for j in range(i + 1, k + 1)],
            check_acyclic=False,
        )
        p_clean = eligibility_profile(clean, prio_schedule(clean).schedule)
        p_ladder = eligibility_profile(clean, prio_schedule(laddered).schedule)
        assert p_clean.tolist() == p_ladder.tolist()


class TestInterleavedRings:
    def _double_ring(self, m):
        # Two coincidence rings sharing their df level: every closure is
        # non-bipartite and overlaps both rings.
        arcs = []
        for i in range(m):
            df, cal, insp = i, m + i, 2 * m + i
            coin_a, coin_b = 3 * m + i, 4 * m + i
            arcs += [(df, cal), (cal, insp)]
            arcs += [(insp, coin_a), ((i + 1) % m, coin_a)]
            arcs += [(insp, coin_b), ((i + 2) % m, coin_b)]
        return Dag(5 * m, arcs, check_acyclic=False)

    @pytest.mark.parametrize("m", [4, 9])
    def test_double_ring(self, m):
        d = self._double_ring(m)
        result = check(d)
        dec = result.decomposition
        assert any(not c.is_bipartite for c in dec.components)

    def test_double_ring_single_component(self):
        d = self._double_ring(6)
        dec = decompose(d)
        non_bip = [c for c in dec.components if not c.is_bipartite]
        assert len(non_bip) == 1
        assert non_bip[0].size == d.n


class TestMixedRegimes:
    def test_ring_next_to_bipartite_farm(self):
        # A non-bipartite ring beside ten thousand independent 2-chains:
        # the fast path must keep the farm cheap while the general path
        # handles the ring exactly once.
        arcs = []
        m = 10
        for i in range(m):  # the ring
            df, cal, insp, coin = i, m + i, 2 * m + i, 3 * m + i
            arcs += [(df, cal), (cal, insp), (insp, coin)]
            arcs += [((i + 1) % m, coin)]
        base = 4 * m
        farm = 2000
        for k in range(farm):
            arcs.append((base + 2 * k, base + 2 * k + 1))
        d = Dag(base + 2 * farm, arcs, check_acyclic=False)
        result = check(d)
        dec = result.decomposition
        assert sum(1 for c in dec.components if not c.is_bipartite) == 1
        assert sum(1 for c in dec.components if c.is_bipartite) == farm

    def test_alternating_w_m_tower(self):
        from repro.dag.builders import compose_identified
        from repro.theory.families import m_dag, w_dag

        pieces = []
        for _ in range(4):
            pieces.append(w_dag(2, 2).dag)   # 2 sources -> 3 sinks
            pieces.append(m_dag(2, 2).dag)   # 3 sources -> 2 sinks
        d = compose_identified(*pieces)
        result = check(d)
        assert result.decomposition.n_components == 8

    def test_fifo_prio_agree_on_symmetric_farm(self):
        arcs = [(2 * k, 2 * k + 1) for k in range(300)]
        d = Dag(600, arcs, check_acyclic=False)
        p = eligibility_profile(d, prio_schedule(d).schedule)
        f = eligibility_profile(d, fifo_schedule(d))
        assert p.tolist() == f.tolist()


class TestNumericalScale:
    def test_priority_profiles_with_huge_counts(self):
        from repro.theory.priority import priority_over

        a = [10**9, 10**9 + 1]
        b = [1, 2, 3]
        r = priority_over(a, b)
        assert 0.0 <= r <= 1.0

    def test_sim_with_extreme_parameters(self):
        from repro.sim.engine import SimParams, make_policy, simulate

        d = Dag(5, [(0, 1), (1, 2), (2, 3), (3, 4)], check_acyclic=False)
        rng = np.random.default_rng(0)
        result = simulate(
            d,
            make_policy("fifo"),
            SimParams(mu_bit=1e-4, mu_bs=65536.0),
            rng,
        )
        assert result.n_jobs == 5
        assert result.utilization < 1e-3
