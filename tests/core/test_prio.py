"""End-to-end tests for the prio heuristic."""

import numpy as np
import pytest

from repro.core.fifo import fifo_schedule
from repro.core.prio import prio_schedule, priorities_from_schedule
from repro.dag.builders import chain, complete_bipartite, fork_join
from repro.dag.graph import Dag
from repro.dag.validate import is_valid_schedule
from repro.theory.eligibility import eligibility_profile
from repro.theory.families import cycle_dag, fig2_catalog, m_dag, n_dag, w_dag
from repro.theory.ic_optimal import is_ic_optimal, max_eligibility


class TestFig3Example:
    """The paper's worked example: PRIO = c, a, b, d, e with c at 5."""

    def test_schedule(self, fig3_dag):
        res = prio_schedule(fig3_dag)
        assert [fig3_dag.label(u) for u in res.schedule] == list("cabde")

    def test_priorities(self, fig3_dag):
        res = prio_schedule(fig3_dag)
        assert res.priority_of("c") == 5
        assert res.priority_of("a") == 4
        assert res.priority_of("e") == 1

    def test_schedule_is_ic_optimal(self, fig3_dag):
        res = prio_schedule(fig3_dag)
        assert is_ic_optimal(fig3_dag, res.schedule)


class TestValidity:
    @pytest.mark.parametrize("seed", range(6))
    def test_always_a_valid_schedule(self, seed):
        from tests.conftest import random_small_dag

        rng = np.random.default_rng(seed)
        for _ in range(15):
            d = random_small_dag(rng, max_n=14)
            res = prio_schedule(d)
            assert is_valid_schedule(d, res.schedule)

    @pytest.mark.parametrize(
        "combine,use_catalog,remove",
        [
            ("greedy", True, True),
            ("greedy", False, True),
            ("greedy", True, False),
            ("topological", True, True),
        ],
    )
    def test_valid_under_all_knobs(self, combine, use_catalog, remove, rng):
        from tests.conftest import random_small_dag

        for _ in range(8):
            d = random_small_dag(rng, max_n=12)
            res = prio_schedule(
                d,
                combine=combine,
                use_catalog=use_catalog,
                remove_shortcuts=remove,
            )
            assert is_valid_schedule(d, res.schedule)

    def test_empty_dag(self):
        res = prio_schedule(Dag(0, []))
        assert res.schedule == []

    def test_single_job(self):
        res = prio_schedule(Dag(1, []))
        assert res.schedule == [0]
        assert res.priorities == [1]

    def test_invalid_combine_mode(self, fig3_dag):
        with pytest.raises(ValueError, match="combine"):
            prio_schedule(fig3_dag, combine="magic")


class TestIcOptimalityOnCatalog:
    """Where the theoretical algorithm succeeds, the heuristic must too."""

    @pytest.mark.parametrize("inst", fig2_catalog(), ids=lambda i: i.name)
    def test_catalog_blocks(self, inst):
        res = prio_schedule(inst.dag)
        assert is_ic_optimal(inst.dag, res.schedule)

    @pytest.mark.parametrize(
        "dag_fn",
        [
            lambda: chain(6),
            lambda: complete_bipartite(3, 3),
            lambda: fork_join(4),
            lambda: w_dag(3, 3).dag,
            lambda: m_dag(3, 2).dag,
            lambda: n_dag(8).dag,
            lambda: cycle_dag(8).dag,
        ],
    )
    def test_simple_compositions(self, dag_fn):
        d = dag_fn()
        res = prio_schedule(d)
        assert is_ic_optimal(d, res.schedule)

    def test_series_of_blocks(self):
        from repro.dag.builders import compose_series

        d = compose_series(w_dag(2, 2).dag, m_dag(2, 2).dag)
        res = prio_schedule(d)
        profile = eligibility_profile(d, res.schedule)
        envelope = max_eligibility(d)
        assert (profile <= envelope).all()


class TestShortcuts:
    def test_shortcut_removed_and_reported(self, diamond_with_shortcut):
        res = prio_schedule(diamond_with_shortcut)
        assert res.shortcuts_removed == [(0, 3)]
        assert is_valid_schedule(diamond_with_shortcut, res.schedule)

    def test_shortcut_removal_can_be_disabled(self, diamond_with_shortcut):
        res = prio_schedule(diamond_with_shortcut, remove_shortcuts=False)
        assert res.shortcuts_removed == []
        assert is_valid_schedule(diamond_with_shortcut, res.schedule)

    def test_schedule_eligibility_identical_with_or_without(self):
        # Shortcuts never change eligibility *counts* for the same schedule.
        d = Dag(5, [(0, 1), (1, 2), (0, 2), (2, 3), (2, 4)])
        res = prio_schedule(d)
        prof = eligibility_profile(d, res.schedule)
        reduced = d.without_arcs([(0, 2)])
        prof2 = eligibility_profile(reduced, res.schedule)
        assert prof.tolist() == prof2.tolist()


class TestPrioBeatsFifoOnEligibility:
    """The heuristic's purpose: pointwise-higher eligibility than FIFO."""

    @pytest.mark.parametrize(
        "dag_fn",
        [
            lambda: fork_join(10),
            lambda: w_dag(6, 3).dag,
            lambda: m_dag(4, 4).dag,
        ],
    )
    def test_dominates_or_ties(self, dag_fn):
        d = dag_fn()
        prio = eligibility_profile(d, prio_schedule(d).schedule)
        fifo = eligibility_profile(d, fifo_schedule(d))
        assert prio.sum() >= fifo.sum()


class TestPriorityNumbers:
    def test_priorities_from_schedule(self):
        assert priorities_from_schedule(3, [2, 0, 1]) == [2, 1, 3]

    def test_priorities_permutation(self, fig3_dag):
        res = prio_schedule(fig3_dag)
        assert sorted(res.priorities) == [1, 2, 3, 4, 5]

    def test_elapsed_recorded(self, fig3_dag):
        res = prio_schedule(fig3_dag)
        assert res.elapsed_seconds > 0

    def test_families_used(self, fig3_dag):
        used = prio_schedule(fig3_dag).families_used
        assert sum(used.values()) == 2
