"""Tests for remnant re-prioritization (rescue-dag support)."""

import pytest

from repro.core.fifo import fifo_schedule
from repro.core.prio import prio_schedule
from repro.core.rescheduling import RemnantError, reprioritize_remnant
from repro.dag.validate import is_valid_schedule
from repro.workloads.airsn import airsn


class TestReprioritizeRemnant:
    def test_nothing_executed_matches_full_prio(self, fig3_dag):
        remnant = reprioritize_remnant(fig3_dag, [])
        full = prio_schedule(fig3_dag)
        assert remnant.schedule == full.schedule
        assert remnant.priorities == full.priorities

    def test_after_sources(self, fig3_dag):
        a, c = fig3_dag.id_of("a"), fig3_dag.id_of("c")
        remnant = reprioritize_remnant(fig3_dag, [a, c])
        assert set(remnant.schedule) == {
            fig3_dag.id_of(x) for x in "bde"
        }
        assert is_valid_schedule(remnant.remnant, list(range(3)))
        # Executed jobs get the zero priority DAGMan ignores.
        assert remnant.priorities[a] == 0
        assert remnant.priority_of("b") > 0

    def test_schedule_respects_remnant_precedence(self):
        dag = airsn(15)
        executed = set()
        # Execute the first half of the FIFO order (precedence-closed).
        for u in fifo_schedule(dag)[: dag.n // 2]:
            executed.add(u)
        remnant = reprioritize_remnant(dag, executed)
        position = {u: i for i, u in enumerate(remnant.schedule)}
        for u, v in dag.arcs():
            if u in position and v in position:
                assert position[u] < position[v]

    def test_non_closed_set_rejected(self, fig3_dag):
        b = fig3_dag.id_of("b")
        with pytest.raises(ValueError, match="closed"):
            reprioritize_remnant(fig3_dag, [b])

    def test_out_of_range_rejected(self, fig3_dag):
        with pytest.raises(ValueError, match="range"):
            reprioritize_remnant(fig3_dag, [99])

    def test_remnant_error_names_the_violating_ancestor(self, fig3_dag):
        """Regression: the error used to be a bare ValueError whose only
        payload was the message — callers (the live-session layer, the
        serve error mapping) had to parse the text to learn *which* job
        broke closure.  RemnantError carries both ends of the violated
        arc as structured fields."""
        b = fig3_dag.id_of("b")
        with pytest.raises(RemnantError) as exc_info:
            reprioritize_remnant(fig3_dag, [b])
        err = exc_info.value
        assert isinstance(err, ValueError)  # the historical contract
        assert err.job == b
        assert err.ancestor in set(fig3_dag.parents(b))
        assert fig3_dag.label(err.job) in str(err)
        assert fig3_dag.label(err.ancestor) in str(err)

    def test_remnant_error_for_out_of_range_has_no_ancestor(self, fig3_dag):
        with pytest.raises(RemnantError) as exc_info:
            reprioritize_remnant(fig3_dag, [99])
        assert exc_info.value.job == 99
        assert exc_info.value.ancestor is None

    def test_all_executed(self, fig3_dag):
        remnant = reprioritize_remnant(fig3_dag, range(5))
        assert remnant.schedule == []
        assert remnant.priorities == [0] * 5

    def test_kwargs_forwarded(self, fig3_dag):
        remnant = reprioritize_remnant(fig3_dag, [], combine="topological")
        assert remnant.priority_of("a") == 5

    def test_remnant_priorities_are_dense(self):
        dag = airsn(10)
        executed = fifo_schedule(dag)[:7]
        remnant = reprioritize_remnant(dag, executed)
        nonzero = sorted(p for p in remnant.priorities if p > 0)
        assert nonzero == list(range(1, dag.n - 7 + 1))
