"""Tests for the file-level prio tool (Sec. 3.2 integration)."""

import pytest

from repro.core.tool import prioritize_dagman, prioritize_dagman_file
from repro.dagman.parser import parse_dagman_text

FIG3 = """\
JOB a a.sub
JOB b b.sub
JOB c c.sub
JOB d d.sub
JOB e e.sub
PARENT a CHILD b
PARENT c CHILD d e
"""

JSDF = """\
executable = /bin/work
universe = vanilla
queue
"""


class TestPrioritizeDagman:
    def test_sets_fig3_priorities(self):
        dagman = parse_dagman_text(FIG3)
        result = prioritize_dagman(dagman)
        assert result.priorities == {"a": 4, "b": 3, "c": 5, "d": 2, "e": 1}
        assert dagman.get_priority("c") == 5

    def test_renders_vars_lines(self):
        dagman = parse_dagman_text(FIG3)
        prioritize_dagman(dagman)
        text = dagman.render()
        assert 'VARS c jobpriority="5"' in text
        assert text.startswith("JOB a a.sub")  # original lines preserved

    def test_idempotent(self):
        dagman = parse_dagman_text(FIG3)
        prioritize_dagman(dagman)
        first = dagman.render()
        prioritize_dagman(dagman)
        assert dagman.render() == first

    def test_summary_mentions_jobs_and_blocks(self):
        dagman = parse_dagman_text(FIG3)
        result = prioritize_dagman(dagman)
        assert "5 jobs" in result.summary()
        assert "2 building blocks" in result.summary()


class TestRescueMode:
    RESCUE = """\
JOB a a.sub DONE
JOB b b.sub
JOB c c.sub DONE
JOB d d.sub
JOB e e.sub
PARENT a CHILD b
PARENT c CHILD d e
"""

    def test_done_jobs_get_zero_priority(self):
        dagman = parse_dagman_text(self.RESCUE)
        result = prioritize_dagman(dagman, respect_done=True)
        assert result.priorities["a"] == 0
        assert result.priorities["c"] == 0
        assert sorted(
            result.priorities[j] for j in "bde"
        ) == [1, 2, 3]

    def test_ignored_without_flag(self):
        dagman = parse_dagman_text(self.RESCUE)
        result = prioritize_dagman(dagman)
        assert result.priorities["c"] == 5

    def test_remnant_priorities_reflect_remnant_structure(self):
        # With a and c done, the remnant is three independent jobs; they
        # all get some positive priority and the file round-trips.
        dagman = parse_dagman_text(self.RESCUE)
        prioritize_dagman(dagman, respect_done=True)
        assert 'VARS a jobpriority="0"' in dagman.render()

    def test_non_closed_done_set_rejected(self):
        text = "JOB a a.sub\nJOB b b.sub DONE\nPARENT a CHILD b\n"
        dagman = parse_dagman_text(text)
        with pytest.raises(ValueError, match="closed"):
            prioritize_dagman(dagman, respect_done=True)

    def test_file_level_rescue(self, tmp_path):
        path = tmp_path / "rescue.dag"
        path.write_text(self.RESCUE)
        result = prioritize_dagman_file(path, respect_done=True)
        assert result.priorities["a"] == 0
        assert 'jobpriority="0"' in path.read_text()


class TestPrioritizeFile:
    def _write_workflow(self, tmp_path, jsdfs=True):
        dagfile = tmp_path / "IV.dag"
        dagfile.write_text(FIG3)
        if jsdfs:
            for name in "abcde":
                (tmp_path / f"{name}.sub").write_text(JSDF)
        return dagfile

    def test_in_place(self, tmp_path):
        dagfile = self._write_workflow(tmp_path)
        prioritize_dagman_file(dagfile)
        assert 'jobpriority="5"' in dagfile.read_text()

    def test_output_path_leaves_original(self, tmp_path):
        dagfile = self._write_workflow(tmp_path)
        out = tmp_path / "IV_prio.dag"
        prioritize_dagman_file(dagfile, output=out)
        assert "jobpriority" not in dagfile.read_text()
        assert 'jobpriority="5"' in out.read_text()

    def test_instruments_jsdfs(self, tmp_path):
        dagfile = self._write_workflow(tmp_path)
        result = prioritize_dagman_file(dagfile, instrument_jsdfs=True)
        assert len(result.instrumented_jsdfs) == 5
        assert "priority = $(jobpriority)" in (tmp_path / "c.sub").read_text()
        # the priority line lands before queue
        lines = (tmp_path / "c.sub").read_text().splitlines()
        assert lines.index("priority = $(jobpriority)") < lines.index("queue")

    def test_missing_jsdfs_reported_not_fatal(self, tmp_path):
        dagfile = self._write_workflow(tmp_path, jsdfs=False)
        result = prioritize_dagman_file(dagfile, instrument_jsdfs=True)
        assert len(result.missing_jsdfs) == 5
        assert result.instrumented_jsdfs == []

    def test_shared_jsdf_instrumented_once(self, tmp_path):
        dagfile = tmp_path / "shared.dag"
        dagfile.write_text(
            "JOB x common.sub\nJOB y common.sub\nPARENT x CHILD y\n"
        )
        (tmp_path / "common.sub").write_text(JSDF)
        result = prioritize_dagman_file(dagfile, instrument_jsdfs=True)
        assert len(result.instrumented_jsdfs) == 1
        text = (tmp_path / "common.sub").read_text()
        assert text.count("priority = $(jobpriority)") == 1

    def test_dir_directive_respected(self, tmp_path):
        (tmp_path / "subdir").mkdir()
        dagfile = tmp_path / "d.dag"
        dagfile.write_text("JOB x x.sub DIR subdir\n")
        (tmp_path / "subdir" / "x.sub").write_text(JSDF)
        result = prioritize_dagman_file(dagfile, instrument_jsdfs=True)
        assert result.instrumented_jsdfs == [str(tmp_path / "subdir" / "x.sub")]

    def test_prio_kwargs_forwarded(self, tmp_path):
        dagfile = self._write_workflow(tmp_path, jsdfs=False)
        result = prioritize_dagman_file(dagfile, combine="topological")
        # topological combine emits block {a,b} first: a gets top priority.
        assert result.priorities["a"] == 5
