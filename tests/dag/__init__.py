"""Test package."""
