"""Tests for the dag shape constructors."""

import numpy as np
import pytest

from repro.dag.builders import (
    chain,
    complete_bipartite,
    compose_series,
    disjoint_union,
    fork,
    fork_join,
    join,
    layered_random,
    random_dag,
)


class TestBasicShapes:
    def test_chain(self):
        d = chain(4)
        assert d.n == 4 and d.narcs == 3
        assert d.sources() == [0] and d.sinks() == [3]

    def test_chain_single(self):
        d = chain(1)
        assert d.n == 1 and d.narcs == 0

    def test_chain_rejects_zero(self):
        with pytest.raises(ValueError):
            chain(0)

    def test_fork(self):
        d = fork(3)
        assert d.out_degree(0) == 3
        assert len(d.sinks()) == 3

    def test_join(self):
        d = join(3)
        assert d.in_degree(3) == 3
        assert d.sinks() == [3]

    def test_fork_join(self):
        d = fork_join(4)
        assert d.n == 6
        assert d.sources() == [0] and d.sinks() == [5]
        assert d.out_degree(0) == 4 and d.in_degree(5) == 4

    def test_complete_bipartite(self):
        d = complete_bipartite(2, 3)
        assert d.n == 5 and d.narcs == 6
        assert d.is_bipartite_two_level()

    @pytest.mark.parametrize("builder", [fork, join, fork_join])
    def test_width_validation(self, builder):
        with pytest.raises(ValueError):
            builder(0)

    def test_complete_bipartite_validation(self):
        with pytest.raises(ValueError):
            complete_bipartite(0, 3)


class TestLayeredRandom:
    def test_layers_are_levels(self, rng):
        d = layered_random([3, 4, 2], 0.5, rng)
        assert d.n == 9
        levels = d.longest_path_levels()
        assert levels[:3] == [0, 0, 0]
        assert levels[3:7] == [1, 1, 1, 1]
        assert levels[7:] == [2, 2]

    def test_every_nonfirst_job_has_parent(self, rng):
        d = layered_random([2, 5, 5], 0.05, rng)
        for u in range(2, d.n):
            assert d.in_degree(u) >= 1

    def test_no_connection_guarantee_when_disabled(self, rng):
        d = layered_random([2, 3], 0.0, rng, ensure_connected_layers=False)
        assert d.narcs == 0

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            layered_random([0, 2], 0.5, rng)
        with pytest.raises(ValueError):
            layered_random([2, 2], 1.5, rng)


class TestRandomDag:
    def test_bounds(self, rng):
        d = random_dag(10, 0.3, rng)
        assert d.n == 10
        for u, v in d.arcs():
            assert u < v

    def test_prob_extremes(self, rng):
        assert random_dag(6, 0.0, rng).narcs == 0
        assert random_dag(6, 1.0, rng).narcs == 15

    def test_empty(self, rng):
        assert random_dag(0, 0.5, rng).n == 0

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            random_dag(-1, 0.5, rng)
        with pytest.raises(ValueError):
            random_dag(3, 2.0, rng)


class TestComposition:
    def test_compose_series_links_sinks_to_sources(self):
        d = compose_series(fork(2), join(2))
        # fork sinks {1,2} each feed join sources {3,4} (offset by 3).
        assert d.has_arc(1, 3) and d.has_arc(1, 4)
        assert d.has_arc(2, 3) and d.has_arc(2, 4)
        assert d.sources() == [0]
        assert d.sinks() == [d.n - 1]

    def test_compose_series_single(self):
        d = compose_series(chain(3))
        assert d.n == 3 and d.narcs == 2

    def test_disjoint_union(self):
        d = disjoint_union(chain(2), chain(3))
        assert d.n == 5
        assert len(d.sources()) == 2
        assert not d.is_connected_undirected()

    def test_empty_args_rejected(self):
        with pytest.raises(ValueError):
            compose_series()
        with pytest.raises(ValueError):
            disjoint_union()
