"""Tests for the core Dag type."""

import pytest

from repro.dag.graph import CycleError, Dag, DagBuilder, relabel_by_mapping


class TestConstruction:
    def test_empty_dag(self):
        d = Dag(0, [])
        assert d.n == 0
        assert d.narcs == 0
        assert list(d.arcs()) == []

    def test_single_node(self):
        d = Dag(1, [])
        assert d.sources() == [0]
        assert d.sinks() == [0]
        assert d.non_sinks() == []

    def test_basic_adjacency(self):
        d = Dag(3, [(0, 1), (0, 2)])
        assert d.children(0) == (1, 2)
        assert d.parents(1) == (0,)
        assert d.parents(2) == (0,)
        assert d.out_degree(0) == 2
        assert d.in_degree(0) == 0

    def test_narcs_counts_arcs(self):
        d = Dag(4, [(0, 1), (1, 2), (2, 3)])
        assert d.narcs == 3

    def test_negative_n_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            Dag(-1, [])

    def test_arc_out_of_range_rejected(self):
        with pytest.raises(ValueError, match="out of range"):
            Dag(2, [(0, 2)])

    def test_self_loop_rejected(self):
        with pytest.raises(CycleError):
            Dag(2, [(1, 1)])

    def test_duplicate_arc_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            Dag(2, [(0, 1), (0, 1)])

    def test_cycle_rejected(self):
        with pytest.raises(CycleError):
            Dag(3, [(0, 1), (1, 2), (2, 0)])

    def test_cycle_error_reports_cycle(self):
        with pytest.raises(CycleError) as exc:
            Dag(4, [(0, 1), (1, 2), (2, 1), (2, 3)])
        cycle = exc.value.cycle
        assert cycle is not None
        assert cycle[0] == cycle[-1]
        assert set(cycle) <= {1, 2}

    def test_check_acyclic_skippable(self):
        # Constructing from known-acyclic arcs without the check works.
        d = Dag(2, [(0, 1)], check_acyclic=False)
        assert d.has_arc(0, 1)

    def test_labels(self):
        d = Dag(2, [(0, 1)], labels=["first", "second"])
        assert d.label(0) == "first"
        assert d.id_of("second") == 1

    def test_label_count_mismatch_rejected(self):
        with pytest.raises(ValueError, match="labels"):
            Dag(2, [(0, 1)], labels=["only"])

    def test_duplicate_labels_rejected(self):
        with pytest.raises(ValueError, match="unique"):
            Dag(2, [(0, 1)], labels=["x", "x"])

    def test_unlabelled_label_falls_back_to_id(self):
        d = Dag(1, [])
        assert d.label(0) == "0"
        with pytest.raises(KeyError):
            d.id_of("0")


class TestSourcesSinks:
    def test_diamond(self, diamond):
        assert diamond.sources() == [0]
        assert diamond.sinks() == [3]
        assert diamond.non_sinks() == [0, 1, 2]

    def test_is_source_is_sink(self, diamond):
        assert diamond.is_source(0) and not diamond.is_source(1)
        assert diamond.is_sink(3) and not diamond.is_sink(0)

    def test_disconnected_nodes_are_both(self):
        d = Dag(2, [])
        assert d.sources() == [0, 1]
        assert d.sinks() == [0, 1]


class TestStructureQueries:
    def test_topological_order_valid(self, diamond):
        order = diamond.topological_order()
        pos = {u: i for i, u in enumerate(order)}
        for u, v in diamond.arcs():
            assert pos[u] < pos[v]

    def test_longest_path_levels(self, diamond):
        assert diamond.longest_path_levels() == [0, 1, 1, 2]

    def test_longest_path_levels_with_shortcut(self, diamond_with_shortcut):
        # The shortcut does not change the longest path to node 3.
        assert diamond_with_shortcut.longest_path_levels() == [0, 1, 1, 2]

    def test_bipartite_two_level_true(self):
        d = Dag(4, [(0, 2), (0, 3), (1, 3)])
        assert d.is_bipartite_two_level()

    def test_bipartite_two_level_false_for_chain(self):
        assert not Dag(3, [(0, 1), (1, 2)]).is_bipartite_two_level()

    def test_bipartite_two_level_false_without_arcs(self):
        # The paper requires both parts non-empty, hence at least one arc.
        assert not Dag(3, []).is_bipartite_two_level()

    def test_connected_undirected(self, diamond):
        assert diamond.is_connected_undirected()
        assert not Dag(3, [(0, 1)]).is_connected_undirected()
        assert Dag(1, []).is_connected_undirected()
        assert Dag(0, []).is_connected_undirected()

    def test_descendants_ancestors(self):
        d = Dag(5, [(0, 1), (1, 2), (3, 2), (2, 4)])
        assert d.descendants(0) == {1, 2, 4}
        assert d.ancestors(4) == {0, 1, 2, 3}
        assert d.descendants(4) == set()

    def test_has_path(self, diamond):
        assert diamond.has_path(0, 3)
        assert not diamond.has_path(1, 2)
        assert diamond.has_path(0, 0)

    def test_has_path_skip_direct(self, diamond_with_shortcut):
        # 0 -> 3 exists directly, but also via 1 or 2.
        assert diamond_with_shortcut.has_path(0, 3, skip_direct=True)
        d = Dag(2, [(0, 1)])
        assert not d.has_path(0, 1, skip_direct=True)


class TestDerivedDags:
    def test_induced_subgraph(self, diamond):
        sub, mapping = diamond.induced_subgraph([0, 1, 3])
        assert sub.n == 3
        assert mapping == [0, 1, 3]
        assert set(sub.arcs()) == {(0, 1), (1, 2)}

    def test_induced_subgraph_rejects_duplicates(self, diamond):
        with pytest.raises(ValueError, match="duplicate"):
            diamond.induced_subgraph([0, 0])

    def test_induced_subgraph_keeps_labels(self, fig3_dag):
        sub, mapping = fig3_dag.induced_subgraph([2, 3, 4])
        assert sub.labels == ("c", "d", "e")

    def test_reversed(self, diamond):
        rev = diamond.reversed()
        assert set(rev.arcs()) == {(1, 0), (2, 0), (3, 1), (3, 2)}
        assert rev.sources() == [3]

    def test_without_arcs(self, diamond_with_shortcut):
        d = diamond_with_shortcut.without_arcs([(0, 3)])
        assert not d.has_arc(0, 3)
        assert d.narcs == 4

    def test_without_arcs_rejects_missing(self, diamond):
        with pytest.raises(ValueError, match="not present"):
            diamond.without_arcs([(3, 0)])

    def test_relabelled(self, diamond):
        d = diamond.relabelled(["a", "b", "c", "d"])
        assert d.label(3) == "d"
        assert set(d.arcs()) == set(diamond.arcs())

    def test_relabel_by_mapping(self, fig3_dag):
        d = relabel_by_mapping(fig3_dag, {"a": "alpha"})
        assert d.label(0) == "alpha"
        assert d.label(1) == "b"


class TestInterop:
    def test_networkx_round_trip(self, diamond):
        g = diamond.to_networkx()
        back = Dag.from_networkx(g)
        assert set(back.arcs()) == set(diamond.arcs())
        assert back.n == diamond.n

    def test_from_edges_orders_by_appearance(self):
        d = Dag.from_edges([("x", "y"), ("x", "z")])
        assert d.labels == ("x", "y", "z")

    def test_from_edges_with_isolated_nodes(self):
        d = Dag.from_edges([("a", "b")], nodes=["isolated", "a"])
        assert d.n == 3
        assert d.label(0) == "isolated"


class TestDunders:
    def test_len(self, diamond):
        assert len(diamond) == 4

    def test_eq_and_hash(self):
        d1 = Dag(2, [(0, 1)])
        d2 = Dag(2, [(0, 1)])
        assert d1 == d2
        assert hash(d1) == hash(d2)
        assert d1 != Dag(2, [])

    def test_eq_other_type(self, diamond):
        assert diamond != "not a dag"

    def test_repr(self, diamond):
        assert "n=4" in repr(diamond)


class TestDagBuilder:
    def test_builds_in_insertion_order(self):
        b = DagBuilder()
        b.add_job("z")
        b.add_dependency("a", "z")
        dag = b.build()
        assert dag.labels == ("z", "a")
        assert dag.has_arc(1, 0)

    def test_duplicate_dependency_ignored(self):
        b = DagBuilder()
        b.add_dependency("a", "b")
        b.add_dependency("a", "b")
        assert b.build().narcs == 1

    def test_contains_and_len(self):
        b = DagBuilder()
        b.add_job("a")
        assert "a" in b and "b" not in b
        assert len(b) == 1

    def test_cycle_detected_at_build(self):
        b = DagBuilder()
        b.add_dependency("a", "b")
        b.add_dependency("b", "a")
        with pytest.raises(CycleError):
            b.build()
