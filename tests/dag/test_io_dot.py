"""Tests for DOT export."""

from repro.dag.graph import Dag
from repro.dag.io_dot import to_dot


class TestToDot:
    def test_contains_nodes_and_arcs(self, fig3_dag):
        dot = to_dot(fig3_dag)
        assert dot.startswith('digraph "G" {')
        assert '"a" -> "b";' in dot
        assert '"c" -> "d";' in dot
        assert dot.rstrip().endswith("}")

    def test_rankdir_default_matches_paper(self, fig3_dag):
        # The paper draws arcs oriented upward.
        assert "rankdir=BT;" in to_dot(fig3_dag)

    def test_priorities_in_labels(self, fig3_dag):
        dot = to_dot(fig3_dag, priorities=[4, 3, 5, 2, 1])
        assert 'label="c (5)"' in dot

    def test_highlight_fills_nodes(self, fig3_dag):
        dot = to_dot(fig3_dag, highlight={fig3_dag.id_of("c")})
        line = next(l for l in dot.splitlines() if l.strip().startswith('"c"'))
        assert "filled" in line

    def test_quoting_of_special_names(self):
        d = Dag(2, [(0, 1)], labels=['we"ird', "normal"])
        dot = to_dot(d)
        assert '"we\\"ird"' in dot

    def test_unlabelled_dag_uses_ids(self):
        d = Dag(2, [(0, 1)])
        assert '"0" -> "1";' in to_dot(d)

    def test_custom_name(self, diamond):
        assert 'digraph "mydag"' in to_dot(diamond, name="mydag")
