"""Tests for JSON serialization."""

import json

import pytest

from repro.core.prio import prio_schedule
from repro.dag.graph import Dag
from repro.dag.io_json import (
    dag_from_json,
    dag_to_json,
    load_dag,
    save_dag,
    schedule_from_json,
    schedule_to_json,
)
from repro.workloads.airsn import airsn


class TestDagRoundTrip:
    def test_labelled(self, fig3_dag):
        back = dag_from_json(dag_to_json(fig3_dag))
        assert back == fig3_dag

    def test_unlabelled(self, diamond):
        back = dag_from_json(dag_to_json(diamond))
        assert set(back.arcs()) == set(diamond.arcs())
        assert back.labels is None

    def test_file_round_trip(self, tmp_path, fig3_dag):
        path = tmp_path / "dag.json"
        save_dag(fig3_dag, path)
        assert load_dag(path) == fig3_dag

    def test_file_is_plain_json(self, tmp_path, fig3_dag):
        path = tmp_path / "dag.json"
        save_dag(fig3_dag, path)
        payload = json.loads(path.read_text())
        assert payload["format"] == "repro-dag-v1"
        assert payload["n"] == 5

    def test_format_check(self):
        with pytest.raises(ValueError, match="format"):
            dag_from_json({"format": "something-else"})

    def test_bad_arcs_rejected(self):
        with pytest.raises(ValueError, match="pairs"):
            dag_from_json(
                {"format": "repro-dag-v1", "n": 2, "arcs": [[0, 1, 2]]}
            )

    def test_workload_round_trip(self):
        dag = airsn(12)
        back = dag_from_json(dag_to_json(dag))
        assert back == dag


class TestScheduleRoundTrip:
    def test_by_name_for_labelled(self, fig3_dag):
        schedule = prio_schedule(fig3_dag).schedule
        payload = schedule_to_json(fig3_dag, schedule)
        assert payload["schedule"] == ["c", "a", "b", "d", "e"]
        dag, back = schedule_from_json(payload)
        assert back == schedule

    def test_by_id_for_unlabelled(self, diamond):
        payload = schedule_to_json(diamond, [0, 2, 1, 3])
        dag, back = schedule_from_json(payload)
        assert back == [0, 2, 1, 3]

    def test_permutation_check(self, diamond):
        payload = schedule_to_json(diamond, [0, 2, 1, 3])
        payload["schedule"] = [0, 0, 1, 2]
        with pytest.raises(ValueError, match="permutation"):
            schedule_from_json(payload)

    def test_format_check(self, diamond):
        with pytest.raises(ValueError, match="schedule payload"):
            schedule_from_json(dag_to_json(diamond))

    def test_json_serializable(self, fig3_dag):
        schedule = prio_schedule(fig3_dag).schedule
        text = json.dumps(schedule_to_json(fig3_dag, schedule))
        dag, back = schedule_from_json(json.loads(text))
        assert back == schedule
