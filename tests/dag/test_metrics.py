"""Tests for dag shape statistics."""

from repro.dag.builders import chain, complete_bipartite, fork_join
from repro.dag.graph import Dag
from repro.dag.metrics import dag_shape
from repro.workloads.airsn import airsn


class TestDagShape:
    def test_chain(self):
        s = dag_shape(chain(5))
        assert s.depth == 4
        assert s.max_level_width == 1
        assert s.n_sources == s.n_sinks == 1

    def test_fork_join(self):
        s = dag_shape(fork_join(6))
        assert s.depth == 2
        assert s.max_level_width == 6
        assert s.max_out_degree == 6 and s.max_in_degree == 6

    def test_bipartite(self):
        s = dag_shape(complete_bipartite(3, 4))
        assert s.depth == 1
        assert s.n_sources == 3 and s.n_sinks == 4
        assert s.mean_degree == 12 / 7

    def test_empty(self):
        s = dag_shape(Dag(0, []))
        assert s.n_jobs == 0 and s.depth == 0

    def test_isolated_nodes(self):
        s = dag_shape(Dag(3, [(0, 1)]))
        assert s.n_isolated == 1

    def test_airsn_shape(self):
        s = dag_shape(airsn(250))
        assert s.n_jobs == 773
        # depth: 21-handle + snr + collect1 + smooth + collect2
        assert s.depth == 24
        assert s.max_level_width >= 250
        assert s.parallelism_bound == s.max_level_width

    def test_row_rendering(self):
        text = dag_shape(chain(3)).row("mychain")
        assert "mychain" in text and "jobs=3" in text
