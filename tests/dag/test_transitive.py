"""Tests for shortcut removal / transitive reduction."""

import numpy as np
import pytest

from repro.dag.builders import chain, complete_bipartite, random_dag
from repro.dag.graph import Dag
from repro.dag.transitive import (
    find_shortcuts,
    remove_shortcuts,
    transitive_closure_sets,
    transitive_reduction_reference,
)


class TestFindShortcuts:
    def test_no_shortcuts_in_chain(self):
        assert find_shortcuts(chain(5)) == []

    def test_no_shortcuts_in_bipartite(self):
        assert find_shortcuts(complete_bipartite(3, 3)) == []

    def test_detects_simple_shortcut(self, diamond_with_shortcut):
        assert find_shortcuts(diamond_with_shortcut) == [(0, 3)]

    def test_detects_chain_shortcut(self):
        d = Dag(3, [(0, 1), (1, 2), (0, 2)])
        assert find_shortcuts(d) == [(0, 2)]

    def test_no_false_positive_on_diamond(self, diamond):
        # Both 0->1 and 0->2 are essential.
        assert find_shortcuts(diamond) == []

    def test_long_range_shortcut(self):
        # 0 -> 1 -> 2 -> 3 -> 4 plus 0 -> 4; also 0 -> 2.
        d = Dag(5, [(0, 1), (1, 2), (2, 3), (3, 4), (0, 4), (0, 2)])
        assert set(find_shortcuts(d)) == {(0, 4), (0, 2)}

    def test_parallel_paths_not_shortcut(self):
        # Two node-disjoint paths between endpoints: no arc is redundant.
        d = Dag(6, [(0, 1), (1, 5), (0, 2), (2, 5), (0, 3), (3, 4), (4, 5)])
        assert find_shortcuts(d) == []


class TestRemoveShortcuts:
    def test_identity_when_clean(self, diamond):
        reduced, removed = remove_shortcuts(diamond)
        assert removed == []
        assert reduced is diamond  # no copy when nothing to remove

    def test_removes_and_reports(self, diamond_with_shortcut):
        reduced, removed = remove_shortcuts(diamond_with_shortcut)
        assert removed == [(0, 3)]
        assert not reduced.has_arc(0, 3)
        assert reduced.n == 4

    def test_preserves_reachability(self, rng):
        for _ in range(20):
            d = random_dag(12, 0.4, rng)
            reduced, _ = remove_shortcuts(d)
            assert transitive_closure_sets(d) == transitive_closure_sets(reduced)

    def test_result_is_shortcut_free(self, rng):
        for _ in range(20):
            d = random_dag(12, 0.5, rng)
            reduced, _ = remove_shortcuts(d)
            assert find_shortcuts(reduced) == []

    def test_matches_networkx_reference(self, rng):
        for _ in range(25):
            d = random_dag(11, 0.4, rng)
            reduced, _ = remove_shortcuts(d)
            reference = transitive_reduction_reference(d)
            assert set(reduced.arcs()) == set(reference.arcs())

    def test_keeps_labels(self):
        d = Dag(3, [(0, 1), (1, 2), (0, 2)], labels=["a", "b", "c"])
        reduced, _ = remove_shortcuts(d)
        assert reduced.labels == ("a", "b", "c")

    def test_sources_and_sinks_unchanged(self, rng):
        for _ in range(10):
            d = random_dag(14, 0.5, rng)
            reduced, _ = remove_shortcuts(d)
            assert reduced.sources() == d.sources()
            assert reduced.sinks() == d.sinks()


class TestClosureSets:
    def test_chain_closure(self):
        closure = transitive_closure_sets(chain(4))
        assert closure[0] == {1, 2, 3}
        assert closure[3] == set()

    def test_matches_descendants(self, rng):
        d = random_dag(10, 0.4, rng)
        closure = transitive_closure_sets(d)
        for u in range(d.n):
            assert closure[u] == d.descendants(u)


class TestScale:
    def test_dense_random_dag(self, rng):
        # A denser dag where nearly every arc is a shortcut.
        d = random_dag(40, 0.9, rng)
        reduced, removed = remove_shortcuts(d)
        assert find_shortcuts(reduced) == []
        assert reduced.narcs + len(removed) == d.narcs

    @pytest.mark.parametrize("n", [1, 2])
    def test_tiny(self, n):
        d = Dag(n, [(0, 1)] if n == 2 else [])
        reduced, removed = remove_shortcuts(d)
        assert removed == []
        assert reduced.n == n

    def test_levels_prune_does_not_miss(self):
        # Shortcut spanning exactly two levels (minimum possible).
        d = Dag(4, [(0, 1), (1, 2), (0, 2), (2, 3)])
        assert find_shortcuts(d) == [(0, 2)]
