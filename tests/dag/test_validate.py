"""Tests for schedule validation."""

import pytest

from repro.dag.builders import chain
from repro.dag.graph import Dag
from repro.dag.validate import (
    assert_valid_schedule,
    is_topological_order,
    is_valid_schedule,
    schedule_violations,
)


class TestValidSchedules:
    def test_chain_order(self):
        assert is_valid_schedule(chain(4), [0, 1, 2, 3])

    def test_diamond_both_middles(self, diamond):
        assert is_valid_schedule(diamond, [0, 1, 2, 3])
        assert is_valid_schedule(diamond, [0, 2, 1, 3])

    def test_empty_dag(self):
        assert is_valid_schedule(Dag(0, []), [])

    def test_assert_passes_silently(self, diamond):
        assert_valid_schedule(diamond, [0, 2, 1, 3])


class TestInvalidSchedules:
    def test_precedence_violation(self, diamond):
        assert not is_valid_schedule(diamond, [1, 0, 2, 3])

    def test_wrong_length(self, diamond):
        assert not is_valid_schedule(diamond, [0, 1, 2])

    def test_duplicate_entry(self, diamond):
        assert not is_valid_schedule(diamond, [0, 1, 1, 3])

    def test_out_of_range_entry(self, diamond):
        assert not is_valid_schedule(diamond, [0, 1, 2, 7])

    def test_assert_raises_with_labels(self, fig3_dag):
        # b before its parent a.
        bad = [fig3_dag.id_of(x) for x in "bacde"]
        with pytest.raises(ValueError, match="parent"):
            assert_valid_schedule(fig3_dag, bad)


class TestViolationMessages:
    def test_describes_precedence(self, diamond):
        msgs = schedule_violations(diamond, [3, 0, 1, 2])
        assert any("precedence" in m for m in msgs)

    def test_describes_duplicates_and_missing(self, diamond):
        msgs = schedule_violations(diamond, [0, 0, 1, 2])
        assert any("twice" in m for m in msgs)
        assert any("never scheduled" in m for m in msgs)

    def test_limit_stops_early(self, diamond):
        msgs = schedule_violations(diamond, [9, 9, 9, 9], limit=1)
        assert len(msgs) == 1

    def test_valid_is_empty(self, diamond):
        assert schedule_violations(diamond, [0, 1, 2, 3]) == []

    def test_is_topological_alias(self, diamond):
        assert is_topological_order(diamond, [0, 1, 2, 3])
        assert not is_topological_order(diamond, [3, 2, 1, 0])
