"""Test package."""
