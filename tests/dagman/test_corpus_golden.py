"""Golden conformance tests over the committed DAGMan corpus.

The fixtures under ``tests/dagman/corpus/`` are small hand-written trees
in the two ingestion-target layouts (nipype flat study, cax outer/inner
production).  Job counts, edge lists and flatten fingerprints are pinned
here byte-stable: any importer change that renames flat ids, reorders
declarations or alters arc expansion fails these tests loudly instead of
silently invalidating every cached schedule keyed by fingerprint.
"""

from __future__ import annotations

from pathlib import Path

from repro.dagman.importer import import_dagman_file
from repro.workloads.corpus import cax_workflow, nipype_workflow

CORPUS = Path(__file__).parent / "corpus"

NIPYPE_FINGERPRINT = (
    "3f4e923ef136ce03c43eacffe34308ecb5be1007055ee067924ba32a7608d353"
)
CAX_FINGERPRINT = (
    "4f6c2d15fa3d870063326cc5c510f2eb479ed7048816fbdbbf36d48c53d848d7"
)
#: Registry-default generator fingerprints (nipype-small / cax-small).
NIPYPE_SMALL_FINGERPRINT = (
    "8f357aa536e6c5c3dd58be198433ce30dc871b96397d4ebc11fd2e5a8b41af1e"
)
CAX_SMALL_FINGERPRINT = (
    "cbc26a4873b0249ff531592538c5f67a14057a3955d9969cac0483ababc360b5"
)


class TestNipypeCorpus:
    def test_flattened_shape(self):
        w = import_dagman_file(CORPUS / "nipype" / "workflow.dag")
        assert w.n_jobs == 7
        assert w.n_arcs == 7
        assert list(w.flat.jobs) == [
            "specify_model",
            "realign_s001",
            "smooth_s001",
            "realign_s002",
            "smooth_s002",
            "merge",
            "report",
        ]
        assert w.flat.arcs == [
            ("specify_model", "realign_s001"),
            ("specify_model", "realign_s002"),
            ("realign_s001", "smooth_s001"),
            ("realign_s002", "smooth_s002"),
            ("smooth_s001", "merge"),
            ("smooth_s002", "merge"),
            ("merge", "report"),
        ]

    def test_fingerprint_pinned(self):
        w = import_dagman_file(CORPUS / "nipype" / "workflow.dag")
        assert w.fingerprint() == NIPYPE_FINGERPRINT

    def test_retry_carried(self):
        w = import_dagman_file(CORPUS / "nipype" / "workflow.dag")
        assert w.flat.retries == {"report": 1}


class TestCaxCorpus:
    def test_flattened_shape(self):
        w = import_dagman_file(CORPUS / "cax" / "production.dag")
        assert w.n_jobs == 12
        assert w.n_arcs == 14
        assert list(w.flat.jobs) == [
            "stage_runlist",
            "run_0000+stage_in",
            "run_0000+chunk_000",
            "run_0000+chunk_001",
            "run_0000+merge",
            "run_0000+upload",
            "run_0001+stage_in",
            "run_0001+chunk_000",
            "run_0001+chunk_001",
            "run_0001+merge",
            "run_0001+upload",
            "massive_cax",
        ]
        # The outer arcs attach to inner sources (stage_in) and sinks
        # (upload); none reference the subdag node names.
        assert ("stage_runlist", "run_0000+stage_in") in w.flat.arcs
        assert ("run_0001+upload", "massive_cax") in w.flat.arcs

    def test_fingerprint_pinned(self):
        w = import_dagman_file(CORPUS / "cax" / "production.dag")
        assert w.fingerprint() == CAX_FINGERPRINT

    def test_vars_macro_expansion(self):
        w = import_dagman_file(CORPUS / "cax" / "production.dag")
        meta = w.meta["run_0000+chunk_000"]
        assert meta.submit_file == "process_v6.1.1.sub"
        assert meta.vars == {"run": "0", "pax_version": "v6.1.1"}
        assert meta.directory == "run_0000"
        assert meta.retries == 3

    def test_rescue_marks_first_run_done(self):
        w = import_dagman_file(
            CORPUS / "cax" / "production.dag", rescue=True
        )
        done = sorted(n for n, m in w.meta.items() if m.done)
        assert done == [
            "run_0000+chunk_000",
            "run_0000+chunk_001",
            "run_0000+merge",
            "run_0000+stage_in",
            "run_0000+upload",
            "stage_runlist",
        ]
        # Rescue markers change job state, never dag structure.
        assert w.fingerprint() == CAX_FINGERPRINT


class TestGeneratorFingerprints:
    """The registry's default corpus shapes are byte-stable too — they
    key the schedule cache for every bench that runs on them."""

    def test_nipype_small(self):
        assert (
            nipype_workflow(6, 4).fingerprint() == NIPYPE_SMALL_FINGERPRINT
        )

    def test_cax_small(self):
        assert cax_workflow(5, 4).fingerprint() == CAX_SMALL_FINGERPRINT
