"""Property suite: import round-trips over random nested workflow trees.

Random multi-file trees (SPLICE and SUBDAG EXTERNAL includes, DIR
scoping, VARS, RETRY, random forward arcs) must satisfy:

* **fingerprint identity** — parse → flatten → ``prio`` instrumentation
  → render → parse → flatten reproduces the same dag fingerprint and
  the same flat job ids (the fingerprint keys the schedule cache, so
  any drift here silently invalidates cached schedules);
* **fixpoint** — re-importing a flattened render reproduces the render
  byte for byte;
* **determinism** — the importer's output does not depend on the order
  the tree's files are supplied (on disk: directory listing order).
"""

from __future__ import annotations

import pytest

pytest.importorskip("hypothesis")

from hypothesis import given, strategies as st

from repro.core.tool import prioritize_dagman
from repro.dagman.importer import import_dagman_tree
from repro.dagman.parser import parse_dagman_text


@st.composite
def workflow_trees(draw) -> dict[str, str]:
    """A random acyclic multi-file tree rooted at ``f0.dag``.

    File ``fi`` may include only files ``fj`` with j > i, so include
    cycles are impossible by construction; every file declares at least
    one plain job, so the flattened dag is never empty.
    """
    n_files = draw(st.integers(min_value=1, max_value=4))
    files: dict[str, str] = {}
    for i in range(n_files - 1, -1, -1):
        lines: list[str] = []
        units: list[str] = []
        for j in range(draw(st.integers(min_value=1, max_value=3))):
            name = f"j{j}"
            units.append(name)
            suffix = draw(st.sampled_from(["", " DIR jobdir", " NOOP"]))
            submit = draw(
                st.sampled_from([f"{name}.sub", f"{name}_$(p).sub"])
            )
            lines.append(f"JOB {name} {submit}{suffix}")
            if draw(st.booleans()):
                lines.append(
                    f'VARS {name} p="{draw(st.integers(0, 9))}"'
                )
        deeper = list(range(i + 1, n_files))
        if deeper:
            for k in range(draw(st.integers(min_value=0, max_value=2))):
                target = draw(st.sampled_from(deeper))
                kind = draw(
                    st.sampled_from(["SPLICE", "SUBDAG EXTERNAL"])
                )
                name = f"s{k}"
                units.append(name)
                dir_clause = (
                    f" DIR d{k}" if draw(st.booleans()) else ""
                )
                lines.append(f"{kind} {name} f{target}.dag{dir_clause}")
                if draw(st.booleans()):
                    lines.append(f'VARS {name} p="{k}"')
                if draw(st.booleans()):
                    lines.append(
                        f"RETRY {name} {draw(st.integers(1, 3))}"
                    )
        for a in range(len(units)):
            for b in range(a + 1, len(units)):
                if draw(st.booleans()):
                    lines.append(
                        f"PARENT {units[a]} CHILD {units[b]}"
                    )
        files[f"f{i}.dag"] = "\n".join(lines) + "\n"
    return files


@given(workflow_trees())
def test_flatten_export_reparse_fingerprint_identity(files):
    w = import_dagman_tree(files, "f0.dag")
    # "prio export": instrument the flattened file in place, as the
    # import CLI's --prioritize -o path does.
    prioritize_dagman(w.flat)
    text = w.flat.render()
    again = import_dagman_tree({"flat.dag": text}, "flat.dag")
    assert again.fingerprint() == w.fingerprint()
    assert list(again.flat.jobs) == list(w.flat.jobs)
    assert again.flat.arcs == w.flat.arcs


@given(workflow_trees())
def test_flat_render_is_a_fixpoint(files):
    w = import_dagman_tree(files, "f0.dag")
    text = w.render()
    again = import_dagman_tree({"flat.dag": text}, "flat.dag")
    assert again.render() == text


@given(workflow_trees())
def test_reparse_preserves_metadata(files):
    w = import_dagman_tree(files, "f0.dag")
    again = parse_dagman_text(w.render())
    assert again.vars_ == w.flat.vars_
    assert again.retries == w.flat.retries
    assert {n: d.noop for n, d in again.jobs.items()} == {
        n: d.noop for n, d in w.flat.jobs.items()
    }
    assert {n: d.directory for n, d in again.jobs.items()} == {
        n: d.directory for n, d in w.flat.jobs.items()
    }


@given(workflow_trees(), st.randoms(use_true_random=False))
def test_importer_deterministic_across_path_orderings(files, rnd):
    items = list(files.items())
    rnd.shuffle(items)
    a = import_dagman_tree(files, "f0.dag")
    b = import_dagman_tree(dict(items), "f0.dag")
    assert a.fingerprint() == b.fingerprint()
    assert a.render() == b.render()
    assert list(a.meta) == list(b.meta)


@given(workflow_trees())
def test_priorities_survive_the_round_trip(files):
    w = import_dagman_tree(files, "f0.dag")
    result = prioritize_dagman(w.flat)
    again = parse_dagman_text(w.flat.render())
    for name in w.flat.jobs:
        assert again.get_priority(name) == w.flat.get_priority(name)
    assert result.priorities  # the tool did assign something
