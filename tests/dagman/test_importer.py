"""Unit tests for the workflow-tree importer (repro.dagman.importer)."""

from __future__ import annotations

import pytest

from repro.dagman.importer import (
    DagmanImportError,
    import_dagman_file,
    import_dagman_tree,
)
from repro.dagman.parser import parse_dagman_text


def _cax_like() -> dict[str, str]:
    return {
        "outer.dag": (
            "JOB prep prep.sub\n"
            "SUBDAG EXTERNAL run_a run_a/inner.dag DIR run_a\n"
            "SUBDAG EXTERNAL run_b run_b/inner.dag DIR run_b\n"
            'VARS run_a run="a"\n'
            'VARS run_b run="b"\n'
            "RETRY run_a 2\n"
            "JOB merge merge.sub\n"
            "PARENT prep CHILD run_a run_b\n"
            "PARENT run_a run_b CHILD merge\n"
        ),
        "run_a/inner.dag": (
            "JOB process process_$(run).sub\n"
            "JOB upload upload.sub\n"
            'VARS process chunk="7"\n'
            "PARENT process CHILD upload\n"
        ),
        "run_b/inner.dag": (
            "JOB process process_$(run).sub\n"
            "JOB upload upload.sub\n"
            "PARENT process CHILD upload\n"
        ),
    }


class TestFlattening:
    def test_namespaced_ids_in_declaration_order(self):
        w = import_dagman_tree(_cax_like(), "outer.dag")
        assert list(w.flat.jobs) == [
            "prep",
            "run_a+process",
            "run_a+upload",
            "run_b+process",
            "run_b+upload",
            "merge",
        ]

    def test_arcs_attach_to_inner_sources_and_sinks(self):
        w = import_dagman_tree(_cax_like(), "outer.dag")
        assert ("prep", "run_a+process") in w.flat.arcs
        assert ("run_a+upload", "merge") in w.flat.arcs
        # No arc touches the include node's own name.
        assert all("run_a" != p and "run_a" != c for p, c in w.flat.arcs)

    def test_vars_inherited_inner_wins(self):
        w = import_dagman_tree(_cax_like(), "outer.dag")
        assert w.meta["run_a+process"].vars == {"run": "a", "chunk": "7"}
        assert w.meta["run_b+upload"].vars == {"run": "b"}
        # Jobs outside any include inherit nothing.
        assert w.meta["prep"].vars == {}

    def test_macro_expansion_in_submit_files(self):
        w = import_dagman_tree(_cax_like(), "outer.dag")
        assert w.meta["run_a+process"].submit_file == "process_a.sub"
        assert w.meta["run_b+process"].submit_file == "process_b.sub"

    def test_undefined_macro_stays_verbatim_in_submit_file(self):
        tree = {"root.dag": "JOB a run_$(undef).sub\n"}
        w = import_dagman_tree(tree, "root.dag")
        assert w.meta["a"].submit_file == "run_$(undef).sub"

    def test_dir_scoping_composes(self):
        tree = {
            "root.dag": "SPLICE outer sub/mid.dag DIR sub\n",
            "sub/mid.dag": "SPLICE inner deep.dag DIR deeper\n",
            "sub/deep.dag": "JOB leaf leaf.sub DIR leafdir\n",
        }
        w = import_dagman_tree(tree, "root.dag")
        meta = w.meta["outer+inner+leaf"]
        assert meta.directory == "sub/deeper/leafdir"

    def test_retry_on_include_applies_to_inner_jobs(self):
        w = import_dagman_tree(_cax_like(), "outer.dag")
        assert w.flat.retries["run_a+process"] == 2
        assert w.flat.retries["run_a+upload"] == 2
        assert "run_b+process" not in w.flat.retries

    def test_scripts_carried_with_flat_names(self):
        tree = {
            "root.dag": "SPLICE s inner.dag\n",
            "inner.dag": (
                "JOB a a.sub\nSCRIPT POST a check.sh $(JOB)\n"
            ),
        }
        w = import_dagman_tree(tree, "root.dag")
        assert w.flat.scripts[("s+a", "post")] == "check.sh $(JOB)"

    def test_meta_source_and_depth(self):
        w = import_dagman_tree(_cax_like(), "outer.dag")
        assert w.meta["prep"].source == "outer.dag"
        assert w.meta["prep"].depth == 0
        assert w.meta["run_a+process"].source == "run_a/inner.dag"
        assert w.meta["run_a+process"].depth == 1

    def test_splice_and_subdag_flatten_identically(self):
        def shape(keyword: str) -> str:
            tree = {
                "root.dag": f"{keyword} s inner.dag\nJOB z z.sub\n"
                "PARENT s CHILD z\n",
                "inner.dag": "JOB a a.sub\nJOB b b.sub\nPARENT a CHILD b\n",
            }
            return import_dagman_tree(tree, "root.dag").fingerprint()

        assert shape("SPLICE") == shape("SUBDAG EXTERNAL")

    def test_empty_include_drops_out(self):
        tree = {
            "root.dag": (
                "JOB a a.sub\nSPLICE s empty.dag\nJOB b b.sub\n"
                "PARENT a CHILD s\nPARENT s CHILD b\n"
            ),
            "empty.dag": "# nothing here\n",
        }
        w = import_dagman_tree(tree, "root.dag")
        assert list(w.flat.jobs) == ["a", "b"]
        # The connection *through* the empty splice vanishes with it.
        assert w.flat.arcs == []


class TestRoundTripRender:
    def test_render_reparses_to_same_structure(self):
        w = import_dagman_tree(_cax_like(), "outer.dag")
        again = parse_dagman_text(w.render())
        assert list(again.jobs) == list(w.flat.jobs)
        assert again.arcs == w.flat.arcs
        assert again.vars_ == w.flat.vars_
        assert again.retries == w.flat.retries
        assert again.scripts == w.flat.scripts
        assert again.to_dag().fingerprint() == w.fingerprint()

    def test_set_priority_after_import_replaces_in_place(self):
        w = import_dagman_tree(_cax_like(), "outer.dag")
        w.flat.set_priority("prep", 5)
        w.flat.set_priority("prep", 9)
        text = w.render()
        assert text.count("jobpriority") == 1
        assert 'VARS prep jobpriority="9"' in text

    def test_vars_quotes_escaped_in_render(self):
        tree = {"root.dag": 'JOB a a.sub\nVARS a note="say \\"hi\\""\n'}
        w = import_dagman_tree(tree, "root.dag")
        again = parse_dagman_text(w.render())
        assert again.vars_["a"]["note"] == 'say "hi"'


class TestSubdagModes:
    def test_opaque_mode_keeps_subdag_nodes(self):
        w = import_dagman_tree(
            _cax_like(), "outer.dag", expand_subdags=False
        )
        assert list(w.flat.jobs) == ["prep", "run_a", "run_b", "merge"]
        assert w.meta["run_a"].is_subdag
        assert w.meta["run_a"].retries == 2
        # Only the root file is read.
        assert w.sources == ("outer.dag",)

    def test_opaque_render_reparses(self):
        w = import_dagman_tree(
            _cax_like(), "outer.dag", expand_subdags=False
        )
        again = parse_dagman_text(w.render())
        assert again.jobs["run_a"].is_subdag
        assert again.to_dag().fingerprint() == w.fingerprint()


class TestErrors:
    def test_missing_root(self):
        with pytest.raises(DagmanImportError, match="not in tree"):
            import_dagman_tree({}, "root.dag")

    def test_missing_include_names_includer(self):
        tree = {"root.dag": "SPLICE s gone.dag\n"}
        with pytest.raises(DagmanImportError, match="gone.dag"):
            import_dagman_tree(tree, "root.dag")

    def test_self_inclusion(self):
        tree = {"root.dag": "SPLICE s root.dag\n"}
        with pytest.raises(DagmanImportError, match="recursive include"):
            import_dagman_tree(tree, "root.dag")

    def test_mutual_inclusion_reports_chain(self):
        tree = {
            "a.dag": "SUBDAG EXTERNAL x b.dag\n",
            "b.dag": "SPLICE y a.dag\n",
        }
        with pytest.raises(
            DagmanImportError, match=r"a.dag -> b.dag -> a.dag"
        ):
            import_dagman_tree(tree, "a.dag")

    def test_undefined_macro_in_include_ref(self):
        tree = {"root.dag": "SUBDAG EXTERNAL s run_$(run)/inner.dag\n"}
        with pytest.raises(DagmanImportError, match="undefined macro"):
            import_dagman_tree(tree, "root.dag")

    def test_undeclared_arc_endpoint(self):
        tree = {"root.dag": "JOB a a.sub\nPARENT a CHILD ghost\n"}
        with pytest.raises(DagmanImportError, match="ghost"):
            import_dagman_tree(tree, "root.dag")

    def test_parse_error_names_file(self):
        tree = {
            "root.dag": "SPLICE s inner.dag\n",
            "inner.dag": "FROBNICATE x\n",
        }
        with pytest.raises(DagmanImportError, match="inner.dag"):
            import_dagman_tree(tree, "root.dag")

    def test_name_clash_after_namespacing(self):
        tree = {
            "root.dag": "JOB s+a other.sub\nSPLICE s inner.dag\n",
            "inner.dag": "JOB a a.sub\n",
        }
        with pytest.raises(DagmanImportError, match="clash"):
            import_dagman_tree(tree, "root.dag")

    def test_depth_limit(self):
        tree = {"d0.dag": "JOB leaf leaf.sub\n"}
        for i in range(1, 6):
            tree[f"d{i}.dag"] = f"SPLICE s d{i - 1}.dag\n"
        with pytest.raises(DagmanImportError, match="nesting deeper"):
            import_dagman_tree(tree, "d5.dag", max_depth=3)
        # A generous limit imports fine.
        assert import_dagman_tree(tree, "d5.dag").n_jobs == 1


class TestRescue:
    def test_partial_done_format(self, tmp_path):
        (tmp_path / "flow.dag").write_text(
            "JOB a a.sub\nJOB b b.sub\nPARENT a CHILD b\n"
        )
        (tmp_path / "flow.dag.rescue001").write_text("DONE a\n")
        w = import_dagman_file(tmp_path / "flow.dag", rescue=True)
        assert w.meta["a"].done and not w.meta["b"].done

    def test_highest_numbered_rescue_wins(self, tmp_path):
        (tmp_path / "flow.dag").write_text(
            "JOB a a.sub\nJOB b b.sub\nPARENT a CHILD b\n"
        )
        (tmp_path / "flow.dag.rescue001").write_text("DONE a\n")
        (tmp_path / "flow.dag.rescue002").write_text("DONE a\nDONE b\n")
        w = import_dagman_file(tmp_path / "flow.dag", rescue=True)
        assert w.meta["a"].done and w.meta["b"].done

    def test_full_file_rescue_format(self, tmp_path):
        # The runner rewrites the whole dag with DONE flags appended.
        (tmp_path / "flow.dag").write_text(
            "JOB a a.sub\nJOB b b.sub\nPARENT a CHILD b\n"
        )
        (tmp_path / "flow.dag.rescue").write_text(
            "JOB a a.sub DONE\nJOB b b.sub\nPARENT a CHILD b\n"
        )
        w = import_dagman_file(tmp_path / "flow.dag", rescue=True)
        assert w.meta["a"].done and not w.meta["b"].done

    def test_done_include_marks_whole_subtree(self, tmp_path):
        (tmp_path / "outer.dag").write_text(
            "SUBDAG EXTERNAL s inner.dag\nJOB z z.sub\nPARENT s CHILD z\n"
        )
        (tmp_path / "inner.dag").write_text(
            "JOB a a.sub\nJOB b b.sub\nPARENT a CHILD b\n"
        )
        (tmp_path / "outer.dag.rescue001").write_text("DONE s\n")
        w = import_dagman_file(tmp_path / "outer.dag", rescue=True)
        assert w.meta["s+a"].done and w.meta["s+b"].done
        assert not w.meta["z"].done

    def test_inner_rescue_applies_to_inner_file(self, tmp_path):
        (tmp_path / "outer.dag").write_text(
            "SUBDAG EXTERNAL s inner.dag\n"
        )
        (tmp_path / "inner.dag").write_text(
            "JOB a a.sub\nJOB b b.sub\nPARENT a CHILD b\n"
        )
        (tmp_path / "inner.dag.rescue001").write_text("DONE a\n")
        w = import_dagman_file(tmp_path / "outer.dag", rescue=True)
        assert w.meta["s+a"].done and not w.meta["s+b"].done

    def test_rescue_ignored_by_default(self, tmp_path):
        (tmp_path / "flow.dag").write_text("JOB a a.sub\n")
        (tmp_path / "flow.dag.rescue001").write_text("DONE a\n")
        w = import_dagman_file(tmp_path / "flow.dag")
        assert not w.meta["a"].done

    def test_explicit_rescue_file_override(self, tmp_path):
        (tmp_path / "flow.dag").write_text("JOB a a.sub\nJOB b b.sub\n")
        (tmp_path / "flow.dag.rescue001").write_text("DONE a\n")
        (tmp_path / "other.rescue").write_text("DONE b\n")
        w = import_dagman_file(
            tmp_path / "flow.dag", rescue_file=tmp_path / "other.rescue"
        )
        assert not w.meta["a"].done and w.meta["b"].done

    def test_in_memory_tree_rescue(self):
        tree = {
            "flow.dag": "JOB a a.sub\nJOB b b.sub\nPARENT a CHILD b\n",
            "flow.dag.rescue001": "DONE a\n",
        }
        w = import_dagman_tree(tree, "flow.dag", rescue=True)
        assert w.meta["a"].done and not w.meta["b"].done


class TestDiskFrontend:
    def test_disk_and_memory_agree(self, tmp_path):
        tree = _cax_like()
        for rel, text in tree.items():
            path = tmp_path / rel
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(text)
        on_disk = import_dagman_file(tmp_path / "outer.dag")
        in_memory = import_dagman_tree(tree, "outer.dag")
        assert on_disk.fingerprint() == in_memory.fingerprint()
        assert on_disk.render() == in_memory.render()
        assert list(on_disk.sources) == list(in_memory.sources)

    def test_missing_file_is_import_error(self, tmp_path):
        with pytest.raises(DagmanImportError, match="cannot read"):
            import_dagman_file(tmp_path / "absent.dag")

    def test_to_json_payload(self):
        w = import_dagman_tree(_cax_like(), "outer.dag")
        payload = w.to_json()
        assert payload["format"] == "repro-import-v1"
        assert payload["fingerprint"] == w.fingerprint()
        assert payload["jobs"]["run_a+process"]["vars"] == {
            "run": "a",
            "chunk": "7",
        }
        assert payload["dag"]["n"] == w.n_jobs
