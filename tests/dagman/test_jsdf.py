"""Tests for job-submit description file handling."""

from repro.dagman.jsdf import (
    PRIORITY_LINE,
    instrument_jsdf_file,
    instrument_jsdf_text,
    parse_jsdf,
)

BASIC = """\
executable = /bin/work
universe = vanilla
arguments = --fast
queue
"""


class TestParseJsdf:
    def test_attributes(self):
        attrs = parse_jsdf(BASIC)
        assert attrs["executable"] == "/bin/work"
        assert attrs["arguments"] == "--fast"

    def test_keys_lowercased(self):
        assert parse_jsdf("Executable = /x\nqueue\n")["executable"] == "/x"

    def test_last_assignment_wins(self):
        assert parse_jsdf("x = 1\nx = 2\n")["x"] == "2"

    def test_comments_and_queue_skipped(self):
        attrs = parse_jsdf("# comment\nqueue 5\nx = 1\n")
        assert attrs == {"x": "1"}

    def test_empty(self):
        assert parse_jsdf("") == {}


class TestInstrumentText:
    def test_inserts_before_queue(self):
        out = instrument_jsdf_text(BASIC)
        lines = out.splitlines()
        assert lines.index(PRIORITY_LINE) == lines.index("queue") - 1

    def test_replaces_existing_priority(self):
        text = "priority = 0\nqueue\n"
        out = instrument_jsdf_text(text)
        priority_lines = [
            l for l in out.splitlines() if l.startswith("priority")
        ]
        assert priority_lines == [PRIORITY_LINE]

    def test_idempotent(self):
        once = instrument_jsdf_text(BASIC)
        assert instrument_jsdf_text(once) == once

    def test_appends_without_queue(self):
        out = instrument_jsdf_text("executable = /x\n")
        assert out.rstrip().endswith(PRIORITY_LINE)

    def test_queue_with_count(self):
        out = instrument_jsdf_text("executable = /x\nqueue 10\n")
        lines = out.splitlines()
        assert lines.index(PRIORITY_LINE) < lines.index("queue 10")

    def test_case_insensitive_queue(self):
        out = instrument_jsdf_text("executable = /x\nQueue\n")
        assert out.splitlines()[1] == PRIORITY_LINE


class TestInstrumentFile:
    def test_changes_file(self, tmp_path):
        p = tmp_path / "a.sub"
        p.write_text(BASIC)
        assert instrument_jsdf_file(p) is True
        assert PRIORITY_LINE in p.read_text()

    def test_no_change_when_instrumented(self, tmp_path):
        p = tmp_path / "a.sub"
        p.write_text(instrument_jsdf_text(BASIC))
        assert instrument_jsdf_file(p) is False
