"""Tests for the workflow linter."""

import pytest

from repro.dagman.lint import lint_dagman, lint_dagman_tree
from repro.dagman.parser import parse_dagman_text

CLEAN = """\
JOB a a.sub
JOB b b.sub
PARENT a CHILD b
"""


def codes(findings):
    return [f.code for f in findings]


class TestLint:
    def test_clean_file(self):
        assert lint_dagman(parse_dagman_text(CLEAN)) == []

    def test_undeclared_job(self):
        f = parse_dagman_text("JOB a a.sub\nPARENT a CHILD ghost\n")
        findings = lint_dagman(f)
        assert "undeclared-job" in codes(findings)
        assert findings[0].severity == "error"

    def test_duplicate_dependency(self):
        f = parse_dagman_text(CLEAN + "PARENT a CHILD b\n")
        assert "duplicate-dependency" in codes(lint_dagman(f))

    def test_cycle(self):
        f = parse_dagman_text(
            "JOB a a.sub\nJOB b b.sub\n"
            "PARENT a CHILD b\nPARENT b CHILD a\n"
        )
        findings = lint_dagman(f)
        assert codes(findings) == ["cycle"]
        assert "cycle" in findings[0].message

    def test_done_not_closed(self):
        f = parse_dagman_text(
            "JOB a a.sub\nJOB b b.sub DONE\nPARENT a CHILD b\n"
        )
        findings = lint_dagman(f)
        assert "done-not-closed" in codes(findings)

    def test_done_closed_is_fine(self):
        f = parse_dagman_text(
            "JOB a a.sub DONE\nJOB b b.sub DONE\nJOB c c.sub\n"
            "PARENT a CHILD b\nPARENT b CHILD c\n"
        )
        assert lint_dagman(f) == []

    def test_missing_jsdf(self, tmp_path):
        f = parse_dagman_text(CLEAN)
        findings = lint_dagman(f, root=tmp_path)
        assert codes(findings).count("missing-jsdf") == 2

    def test_present_jsdf(self, tmp_path):
        (tmp_path / "a.sub").write_text("executable=/bin/true\nqueue\n")
        (tmp_path / "b.sub").write_text("executable=/bin/true\nqueue\n")
        assert lint_dagman(parse_dagman_text(CLEAN), root=tmp_path) == []

    def test_disconnected_warning(self):
        f = parse_dagman_text("JOB a a.sub\nJOB b b.sub\n")
        assert "disconnected" in codes(lint_dagman(f))

    def test_splices_are_opaque_nodes(self):
        f = parse_dagman_text(
            "JOB a a.sub\nSPLICE s inner.dag\nPARENT a CHILD s\n"
        )
        assert lint_dagman(f) == []

    def test_finding_str(self):
        f = parse_dagman_text("JOB a a.sub\nPARENT a CHILD ghost\n")
        text = str(lint_dagman(f)[0])
        assert text.startswith("error:") and "ghost" in text


class TestLintTree:
    """Tree-wide lint: nested include defects come back as findings,
    never as crashes."""

    def test_clean_tree(self):
        tree = {
            "root.dag": "JOB a a.sub\nSPLICE s inner.dag\n"
            "PARENT a CHILD s\n",
            "inner.dag": "JOB x x.sub\n",
        }
        assert lint_dagman_tree(tree, "root.dag") == []

    def test_self_include_cycle(self):
        tree = {"root.dag": "SPLICE s root.dag\n"}
        findings = lint_dagman_tree(tree, "root.dag")
        assert codes(findings) == ["include-cycle"]
        assert findings[0].severity == "error"
        assert "root.dag -> root.dag" in findings[0].message

    def test_mutual_include_cycle(self):
        tree = {
            "a.dag": "SUBDAG EXTERNAL x b.dag\n",
            "b.dag": "SPLICE y a.dag\n",
        }
        findings = lint_dagman_tree(tree, "a.dag")
        assert codes(findings) == ["include-cycle"]
        assert "a.dag -> b.dag -> a.dag" in findings[0].message

    def test_missing_include(self):
        tree = {"root.dag": "SPLICE s gone.dag\n"}
        findings = lint_dagman_tree(tree, "root.dag")
        assert codes(findings) == ["missing-include"]
        assert findings[0].where == "root.dag"

    def test_undefined_macro_in_include_ref_is_error(self):
        tree = {"root.dag": "SUBDAG EXTERNAL s run_$(run)/x.dag\n"}
        findings = lint_dagman_tree(tree, "root.dag")
        assert codes(findings) == ["undefined-macro"]
        assert findings[0].severity == "error"

    def test_undefined_macro_in_submit_is_warning(self):
        tree = {"root.dag": "JOB a chunk_$(chunk).sub\n"}
        findings = lint_dagman_tree(tree, "root.dag")
        assert codes(findings) == ["undefined-macro"]
        assert findings[0].severity == "warning"

    def test_defined_macro_not_flagged(self):
        tree = {
            "root.dag": 'JOB a chunk_$(chunk).sub\nVARS a chunk="3"\n'
        }
        assert lint_dagman_tree(tree, "root.dag") == []

    def test_inherited_macro_not_flagged(self):
        tree = {
            "root.dag": 'SPLICE s inner.dag\nVARS s run="7"\n',
            "inner.dag": "JOB a chunk_$(run).sub\n",
        }
        assert lint_dagman_tree(tree, "root.dag") == []

    def test_missing_dir_on_disk(self, tmp_path):
        (tmp_path / "root.dag").write_text("JOB a a.sub DIR nowhere\n")
        findings = lint_dagman_tree(tmp_path / "root.dag")
        assert codes(findings) == ["missing-dir"]
        assert findings[0].severity == "warning"

    def test_present_dir_on_disk(self, tmp_path):
        (tmp_path / "somewhere").mkdir()
        (tmp_path / "root.dag").write_text("JOB a a.sub DIR somewhere\n")
        assert lint_dagman_tree(tmp_path / "root.dag") == []

    def test_dir_check_skipped_in_memory(self):
        tree = {"root.dag": "JOB a a.sub DIR nowhere\n"}
        assert lint_dagman_tree(tree, "root.dag") == []

    def test_per_file_findings_carry_where(self):
        tree = {
            "root.dag": "SPLICE s inner.dag\n",
            "inner.dag": "JOB a a.sub\nPARENT a CHILD ghost\n",
        }
        findings = lint_dagman_tree(tree, "root.dag")
        assert "undeclared-job" in codes(findings)
        who = [f for f in findings if f.code == "undeclared-job"][0]
        assert who.where == "inner.dag"
        assert "(in inner.dag)" in str(who)

    def test_parse_error_is_a_finding(self):
        tree = {
            "root.dag": "SPLICE s inner.dag\n",
            "inner.dag": "FROBNICATE x\n",
        }
        findings = lint_dagman_tree(tree, "root.dag")
        assert codes(findings) == ["parse-error"]

    def test_depth_limit_finding(self):
        tree = {"d0.dag": "JOB leaf leaf.sub\n"}
        for i in range(1, 6):
            tree[f"d{i}.dag"] = f"SPLICE s d{i - 1}.dag\n"
        findings = lint_dagman_tree(tree, "d5.dag", max_depth=3)
        assert "include-depth" in codes(findings)


class TestLintCli:
    def test_clean_exit_zero(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "w.dag"
        path.write_text(CLEAN)
        assert main(["lint", str(path)]) == 0
        assert "clean" in capsys.readouterr().out

    def test_error_exit_one(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "w.dag"
        path.write_text("JOB a a.sub\nPARENT a CHILD ghost\n")
        assert main(["lint", str(path)]) == 1
        assert "undeclared" in capsys.readouterr().out

    def test_check_jsdfs_flag(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "w.dag"
        path.write_text(CLEAN)
        assert main(["lint", str(path), "--check-jsdfs"]) == 0
        assert "missing-jsdf" in capsys.readouterr().out

    def test_recursive_clean(self, tmp_path, capsys):
        from repro.cli import main

        (tmp_path / "w.dag").write_text("SPLICE s inner.dag\n")
        (tmp_path / "inner.dag").write_text("JOB a a.sub\n")
        assert main(["lint", str(tmp_path / "w.dag"), "-r"]) == 0
        assert "clean" in capsys.readouterr().out

    def test_recursive_cycle_exit_one(self, tmp_path, capsys):
        from repro.cli import main

        (tmp_path / "w.dag").write_text("SPLICE s w.dag\n")
        assert main(["lint", str(tmp_path / "w.dag"), "-r"]) == 1
        assert "include-cycle" in capsys.readouterr().out
