"""Tests for the workflow linter."""

import pytest

from repro.dagman.lint import lint_dagman
from repro.dagman.parser import parse_dagman_text

CLEAN = """\
JOB a a.sub
JOB b b.sub
PARENT a CHILD b
"""


def codes(findings):
    return [f.code for f in findings]


class TestLint:
    def test_clean_file(self):
        assert lint_dagman(parse_dagman_text(CLEAN)) == []

    def test_undeclared_job(self):
        f = parse_dagman_text("JOB a a.sub\nPARENT a CHILD ghost\n")
        findings = lint_dagman(f)
        assert "undeclared-job" in codes(findings)
        assert findings[0].severity == "error"

    def test_duplicate_dependency(self):
        f = parse_dagman_text(CLEAN + "PARENT a CHILD b\n")
        assert "duplicate-dependency" in codes(lint_dagman(f))

    def test_cycle(self):
        f = parse_dagman_text(
            "JOB a a.sub\nJOB b b.sub\n"
            "PARENT a CHILD b\nPARENT b CHILD a\n"
        )
        findings = lint_dagman(f)
        assert codes(findings) == ["cycle"]
        assert "cycle" in findings[0].message

    def test_done_not_closed(self):
        f = parse_dagman_text(
            "JOB a a.sub\nJOB b b.sub DONE\nPARENT a CHILD b\n"
        )
        findings = lint_dagman(f)
        assert "done-not-closed" in codes(findings)

    def test_done_closed_is_fine(self):
        f = parse_dagman_text(
            "JOB a a.sub DONE\nJOB b b.sub DONE\nJOB c c.sub\n"
            "PARENT a CHILD b\nPARENT b CHILD c\n"
        )
        assert lint_dagman(f) == []

    def test_missing_jsdf(self, tmp_path):
        f = parse_dagman_text(CLEAN)
        findings = lint_dagman(f, root=tmp_path)
        assert codes(findings).count("missing-jsdf") == 2

    def test_present_jsdf(self, tmp_path):
        (tmp_path / "a.sub").write_text("executable=/bin/true\nqueue\n")
        (tmp_path / "b.sub").write_text("executable=/bin/true\nqueue\n")
        assert lint_dagman(parse_dagman_text(CLEAN), root=tmp_path) == []

    def test_disconnected_warning(self):
        f = parse_dagman_text("JOB a a.sub\nJOB b b.sub\n")
        assert "disconnected" in codes(lint_dagman(f))

    def test_splices_are_opaque_nodes(self):
        f = parse_dagman_text(
            "JOB a a.sub\nSPLICE s inner.dag\nPARENT a CHILD s\n"
        )
        assert lint_dagman(f) == []

    def test_finding_str(self):
        f = parse_dagman_text("JOB a a.sub\nPARENT a CHILD ghost\n")
        text = str(lint_dagman(f)[0])
        assert text.startswith("error:") and "ghost" in text


class TestLintCli:
    def test_clean_exit_zero(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "w.dag"
        path.write_text(CLEAN)
        assert main(["lint", str(path)]) == 0
        assert "clean" in capsys.readouterr().out

    def test_error_exit_one(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "w.dag"
        path.write_text("JOB a a.sub\nPARENT a CHILD ghost\n")
        assert main(["lint", str(path)]) == 1
        assert "undeclared" in capsys.readouterr().out

    def test_check_jsdfs_flag(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "w.dag"
        path.write_text(CLEAN)
        assert main(["lint", str(path), "--check-jsdfs"]) == 0
        assert "missing-jsdf" in capsys.readouterr().out
