"""Tests for the DAGMan input-file parser."""

import pytest

from repro.dagman.parser import DagmanParseError, parse_dagman_file, parse_dagman_text


class TestJobStatements:
    def test_basic_job(self):
        f = parse_dagman_text("JOB a a.sub\n")
        assert f.jobs["a"].submit_file == "a.sub"
        assert not f.jobs["a"].is_data

    def test_case_insensitive_keyword(self):
        f = parse_dagman_text("job a a.sub\nJoB b b.sub\n")
        assert list(f.jobs) == ["a", "b"]

    def test_dir_noop_done_flags(self):
        f = parse_dagman_text("JOB a a.sub DIR work NOOP DONE\n")
        decl = f.jobs["a"]
        assert decl.directory == "work" and decl.noop and decl.done

    def test_data_job(self):
        f = parse_dagman_text("DATA d transfer.sub\n")
        assert f.jobs["d"].is_data

    def test_duplicate_job_rejected(self):
        with pytest.raises(DagmanParseError, match="duplicate"):
            parse_dagman_text("JOB a a.sub\nJOB a other.sub\n")

    def test_missing_submit_file_rejected(self):
        with pytest.raises(DagmanParseError, match="submit file"):
            parse_dagman_text("JOB a\n")

    def test_unknown_job_flag_rejected(self):
        with pytest.raises(DagmanParseError, match="unexpected"):
            parse_dagman_text("JOB a a.sub FROBNICATE\n")

    def test_dir_without_value_rejected(self):
        with pytest.raises(DagmanParseError, match="DIR"):
            parse_dagman_text("JOB a a.sub DIR\n")


class TestParentChild:
    def test_single_pair(self):
        f = parse_dagman_text("JOB a a.sub\nJOB b b.sub\nPARENT a CHILD b\n")
        assert f.arcs == [("a", "b")]

    def test_cross_product(self):
        text = (
            "JOB a a.sub\nJOB b b.sub\nJOB c c.sub\nJOB d d.sub\n"
            "PARENT a b CHILD c d\n"
        )
        f = parse_dagman_text(text)
        assert set(f.arcs) == {("a", "c"), ("a", "d"), ("b", "c"), ("b", "d")}

    def test_missing_child_keyword(self):
        with pytest.raises(DagmanParseError, match="CHILD"):
            parse_dagman_text("PARENT a b\n")

    def test_empty_sides_rejected(self):
        with pytest.raises(DagmanParseError, match="each side"):
            parse_dagman_text("PARENT CHILD b\n")

    def test_self_dependency_rejected(self):
        with pytest.raises(DagmanParseError, match="itself"):
            parse_dagman_text("PARENT a CHILD a\n")


class TestVars:
    def test_single_macro(self):
        f = parse_dagman_text('JOB a a.sub\nVARS a key="value"\n')
        assert f.vars_["a"] == {"key": "value"}

    def test_multiple_macros_one_line(self):
        f = parse_dagman_text('JOB a a.sub\nVARS a x="1" y="2"\n')
        assert f.vars_["a"] == {"x": "1", "y": "2"}

    def test_escaped_quotes(self):
        f = parse_dagman_text('JOB a a.sub\nVARS a msg="say \\"hi\\""\n')
        assert f.vars_["a"]["msg"] == 'say "hi"'

    def test_existing_jobpriority_is_tracked(self):
        f = parse_dagman_text('JOB a a.sub\nVARS a jobpriority="7"\n')
        assert f.get_priority("a") == 7
        f.set_priority("a", 9)
        # replaced in place, not duplicated
        assert f.render().count("jobpriority") == 1
        assert 'jobpriority="9"' in f.render()

    def test_malformed_vars_rejected(self):
        with pytest.raises(DagmanParseError, match="assignments"):
            parse_dagman_text("JOB a a.sub\nVARS a novalue\n")


class TestOtherStatements:
    def test_comments_and_blank_lines(self):
        f = parse_dagman_text("# a comment\n\nJOB a a.sub\n")
        assert list(f.jobs) == ["a"]

    def test_known_directives_preserved(self):
        text = (
            "CONFIG dagman.config\n"
            "JOB a a.sub\n"
            "RETRY a 3\n"
            "SCRIPT POST a cleanup.sh\n"
            "PRIORITY a 10\n"
            "DOT graph.dot\n"
        )
        f = parse_dagman_text(text)
        assert f.render() == text

    def test_unknown_keyword_rejected(self):
        with pytest.raises(DagmanParseError, match="unknown keyword"):
            parse_dagman_text("FLY me to.the.moon\n")

    def test_error_carries_line_number(self):
        with pytest.raises(DagmanParseError) as exc:
            parse_dagman_text("JOB a a.sub\nBOGUS x\n")
        assert exc.value.line_no == 2


class TestToDag:
    def test_declaration_order_is_id_order(self):
        f = parse_dagman_text(
            "JOB z z.sub\nJOB a a.sub\nPARENT z CHILD a\n"
        )
        dag = f.to_dag()
        assert dag.labels == ("z", "a")
        assert dag.has_arc(0, 1)

    def test_undeclared_dependency_rejected(self):
        f = parse_dagman_text("JOB a a.sub\nPARENT a CHILD ghost\n")
        with pytest.raises(ValueError, match="undeclared"):
            f.to_dag()

    def test_duplicate_dependencies_collapse(self):
        f = parse_dagman_text(
            "JOB a a.sub\nJOB b b.sub\nPARENT a CHILD b\nPARENT a CHILD b\n"
        )
        assert f.to_dag().narcs == 1

    def test_file_round_trip(self, tmp_path):
        path = tmp_path / "w.dag"
        path.write_text("JOB a a.sub\nJOB b b.sub\nPARENT a CHILD b\n")
        f = parse_dagman_file(path)
        assert f.to_dag().n == 2
