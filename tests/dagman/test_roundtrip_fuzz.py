"""Property-based round-trips for the DAGMan format.

Random workflow structures rendered and re-parsed must reproduce the
structure exactly; instrumentation must stay idempotent; flattened splices
must re-parse; and the runner must accept everything the writer emits.
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.tool import prioritize_dagman
from repro.dagman.parser import parse_dagman_text
from repro.dagman.writer import dag_to_dagman
from repro.dag.graph import Dag

COMMON = settings(
    max_examples=50, suppress_health_check=[HealthCheck.too_slow], deadline=None
)


@st.composite
def labelled_dags(draw, max_n: int = 10) -> Dag:
    n = draw(st.integers(min_value=1, max_value=max_n))
    pairs = [(i, j) for i in range(n) for j in range(i + 1, n)]
    arcs = draw(
        st.lists(st.sampled_from(pairs), unique=True, max_size=len(pairs))
        if pairs
        else st.just([])
    )
    labels = [f"job{i:02d}" for i in range(n)]
    return Dag(n, arcs, labels)


@COMMON
@given(labelled_dags())
def test_write_parse_round_trip(dag):
    dagman = dag_to_dagman(dag)
    reparsed = parse_dagman_text(dagman.render())
    back = reparsed.to_dag()
    assert back.labels == dag.labels
    assert set(back.arcs()) == set(dag.arcs())


@COMMON
@given(labelled_dags())
def test_instrumentation_round_trip(dag):
    dagman = dag_to_dagman(dag)
    result = prioritize_dagman(dagman)
    reparsed = parse_dagman_text(dagman.render())
    for name, priority in result.priorities.items():
        assert reparsed.get_priority(name) == priority
    # Re-instrumenting the reparsed file reproduces the same priorities.
    again = prioritize_dagman(reparsed)
    assert again.priorities == result.priorities


@COMMON
@given(labelled_dags(max_n=8))
def test_runner_accepts_writer_output(dag):
    from repro.dagman.runner import run_workflow

    dagman = dag_to_dagman(dag)
    prioritize_dagman(dagman)
    run = run_workflow(
        parse_dagman_text(dagman.render()), lambda decl, macros: 0
    )
    assert run.succeeded
    assert len(run.dispatch_order) == dag.n
    # Dispatch follows the instrumented priorities = the PRIO schedule.
    from repro.core.prio import prio_schedule

    expected = [dag.label(u) for u in prio_schedule(dag).schedule]
    assert run.dispatch_order == expected


@COMMON
@given(labelled_dags(max_n=8))
def test_rescue_of_full_run_is_all_done(dag):
    from repro.dagman.runner import run_workflow

    dagman = dag_to_dagman(dag)
    run = run_workflow(dagman, lambda decl, macros: 0)
    rescue = parse_dagman_text(run.rescue_text())
    assert all(decl.done for decl in rescue.jobs.values())
    # Resuming the rescue performs zero work.
    resumed = run_workflow(rescue, lambda decl, macros: 1 / 0)
    assert resumed.succeeded
