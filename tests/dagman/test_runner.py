"""Tests for the local DAGMan execution engine."""

import pytest

from repro.core.tool import prioritize_dagman
from repro.dagman.model import JobDecl
from repro.dagman.parser import parse_dagman_text
from repro.dagman.runner import (
    JobState,
    SubprocessExecutor,
    expand_macros,
    run_workflow,
)

FIG3 = """\
JOB a a.sub
JOB b b.sub
JOB c c.sub
JOB d d.sub
JOB e e.sub
PARENT a CHILD b
PARENT c CHILD d e
"""


def ok_executor(log=None):
    def execute(decl, macros):
        if log is not None:
            log.append(decl.name)
        return 0

    return execute


def failing(names, codes=None):
    def execute(decl, macros):
        if decl.name in names:
            return (codes or {}).get(decl.name, 1)
        return 0

    return execute


class TestBasicExecution:
    def test_all_jobs_run(self):
        dagman = parse_dagman_text(FIG3)
        run = run_workflow(dagman, ok_executor())
        assert run.succeeded
        assert run.n_done == 5
        assert all(o.attempts == 1 for o in run.outcomes.values())

    def test_dispatch_respects_precedence(self):
        dagman = parse_dagman_text(FIG3)
        run = run_workflow(dagman, ok_executor())
        order = run.dispatch_order
        assert order.index("a") < order.index("b")
        assert order.index("c") < order.index("d")

    def test_priorities_drive_dispatch(self):
        dagman = parse_dagman_text(FIG3)
        prioritize_dagman(dagman)  # PRIO: c,a,b,d,e
        run = run_workflow(dagman, ok_executor())
        assert run.dispatch_order == ["c", "a", "b", "d", "e"]

    def test_without_priorities_fifo(self):
        dagman = parse_dagman_text(FIG3)
        prioritize_dagman(dagman)
        run = run_workflow(dagman, ok_executor(), use_priorities=False)
        assert run.dispatch_order[0] == "a"

    def test_ties_break_fifo(self):
        dagman = parse_dagman_text(FIG3)
        run = run_workflow(dagman, ok_executor())
        # No priorities: pure eligibility order.
        assert run.dispatch_order == ["a", "c", "b", "d", "e"]

    def test_done_jobs_skipped(self):
        text = FIG3.replace("JOB a a.sub", "JOB a a.sub DONE")
        dagman = parse_dagman_text(text)
        log = []
        run = run_workflow(dagman, ok_executor(log))
        assert "a" not in log
        assert run.outcomes["a"].state is JobState.DONE
        assert run.outcomes["a"].attempts == 0
        assert run.succeeded

    def test_validation(self):
        dagman = parse_dagman_text("SPLICE s x.dag\n")
        with pytest.raises(ValueError, match="flatten"):
            run_workflow(dagman, ok_executor())
        with pytest.raises(ValueError, match="max_workers"):
            run_workflow(parse_dagman_text(FIG3), ok_executor(), max_workers=0)


class TestFailures:
    def test_failure_cancels_descendants(self):
        dagman = parse_dagman_text(FIG3)
        run = run_workflow(dagman, failing({"c"}))
        assert not run.succeeded
        assert run.outcomes["c"].state is JobState.FAILED
        assert run.outcomes["d"].state is JobState.CANCELLED
        assert run.outcomes["e"].state is JobState.CANCELLED
        # The independent branch still ran.
        assert run.outcomes["a"].state is JobState.DONE
        assert run.outcomes["b"].state is JobState.DONE

    def test_failed_jobs_listed(self):
        run = run_workflow(parse_dagman_text(FIG3), failing({"c"}))
        assert run.failed_jobs() == ["c"]

    def test_return_code_recorded(self):
        run = run_workflow(
            parse_dagman_text(FIG3), failing({"c"}, {"c": 42})
        )
        assert run.outcomes["c"].return_code == 42

    def test_retry_recovers(self):
        attempts = {"count": 0}

        def flaky(decl, macros):
            if decl.name == "c":
                attempts["count"] += 1
                return 1 if attempts["count"] < 3 else 0
            return 0

        dagman = parse_dagman_text(FIG3 + "RETRY c 5\n")
        run = run_workflow(dagman, flaky)
        assert run.succeeded
        assert run.outcomes["c"].attempts == 3

    def test_retry_exhausted(self):
        dagman = parse_dagman_text(FIG3 + "RETRY c 2\n")
        run = run_workflow(dagman, failing({"c"}))
        assert run.outcomes["c"].state is JobState.FAILED
        assert run.outcomes["c"].attempts == 3  # 1 try + 2 retries


class TestRescue:
    def test_rescue_marks_done(self):
        run = run_workflow(parse_dagman_text(FIG3), failing({"c"}))
        rescue = run.rescue_text()
        assert "JOB a a.sub DONE" in rescue
        assert "JOB b b.sub DONE" in rescue
        assert "JOB c c.sub\n" in rescue  # failed: not DONE

    def test_rescue_round_trip_completes(self):
        run = run_workflow(parse_dagman_text(FIG3), failing({"c"}))
        # "Fix" job c and resume from the rescue dag.
        resumed = run_workflow(parse_dagman_text(run.rescue_text()), ok_executor())
        assert resumed.succeeded
        assert resumed.outcomes["a"].attempts == 0  # not re-run
        assert resumed.outcomes["c"].attempts == 1

    def test_rescue_idempotent_done_markers(self):
        text = FIG3.replace("JOB a a.sub", "JOB a a.sub DONE")
        run = run_workflow(parse_dagman_text(text), ok_executor())
        rescue = run.rescue_text()
        assert rescue.count("JOB a a.sub DONE") == 1
        assert "DONE DONE" not in rescue


class TestConcurrent:
    def test_parallel_run_completes(self):
        dagman = parse_dagman_text(FIG3)
        run = run_workflow(dagman, ok_executor(), max_workers=4)
        assert run.succeeded

    def test_parallel_failure_handling(self):
        dagman = parse_dagman_text(FIG3)
        run = run_workflow(dagman, failing({"c"}), max_workers=3)
        assert run.outcomes["d"].state is JobState.CANCELLED
        assert run.outcomes["b"].state is JobState.DONE

    def test_executor_exception_propagates(self):
        def boom(decl, macros):
            raise RuntimeError("executor broke")

        with pytest.raises(RuntimeError, match="executor broke"):
            run_workflow(parse_dagman_text(FIG3), boom, max_workers=2)


class TestScripts:
    WITH_SCRIPTS = FIG3 + (
        "SCRIPT PRE c stage-in.sh\n"
        "SCRIPT POST c check-output.sh $(RETURN)\n"
    )

    def _run(self, script_results, executor=None, text=None):
        calls = []

        def run_script(command, macros):
            calls.append((command, dict(macros)))
            return script_results.get(command.split()[0], 0)

        dagman = parse_dagman_text(text or self.WITH_SCRIPTS)
        run = run_workflow(
            dagman, executor or ok_executor(), run_script=run_script
        )
        return run, calls

    def test_scripts_invoked(self):
        run, calls = self._run({})
        assert run.succeeded
        commands = [c for c, _ in calls]
        assert commands == ["stage-in.sh", "check-output.sh $(RETURN)"]

    def test_pre_failure_fails_without_running_job(self):
        log = []
        run, _ = self._run({"stage-in.sh": 1}, executor=ok_executor(log))
        assert run.outcomes["c"].state is JobState.FAILED
        assert "c" not in log  # the job itself never ran
        assert run.outcomes["a"].state is JobState.DONE

    def test_post_decides_success(self):
        # The job fails but POST exits 0: the node succeeds (DAGMan rule).
        run, calls = self._run({}, executor=failing({"c"}, {"c": 7}))
        assert run.succeeded
        post_macros = calls[-1][1]
        assert post_macros["return"] == "7"

    def test_post_failure_fails_good_job(self):
        run, _ = self._run({"check-output.sh": 3})
        assert run.outcomes["c"].state is JobState.FAILED
        assert run.outcomes["c"].return_code == 3

    def test_pre_failure_retried(self):
        results = {"stage-in.sh": 1}
        text = self.WITH_SCRIPTS + "RETRY c 2\n"
        run, calls = self._run(results, text=text)
        assert run.outcomes["c"].attempts == 3

    def test_scripts_skipped_without_runner(self):
        dagman = parse_dagman_text(self.WITH_SCRIPTS)
        run = run_workflow(dagman, ok_executor())
        assert run.succeeded  # scripts ignored entirely

    def test_script_parse_errors(self):
        with pytest.raises(Exception, match="SCRIPT"):
            parse_dagman_text("SCRIPT SOMETIME a x.sh\n")
        with pytest.raises(Exception, match="duplicate"):
            parse_dagman_text(
                "JOB a a.sub\nSCRIPT PRE a x.sh\nSCRIPT PRE a y.sh\n"
            )

    def test_subprocess_script_runner(self, tmp_path):
        (tmp_path / "t.sub").write_text(
            "executable = /usr/bin/touch\narguments = job.out\nqueue\n"
        )
        dagfile_text = (
            "JOB x t.sub\n"
            "SCRIPT PRE x /usr/bin/touch pre.out\n"
            "SCRIPT POST x /usr/bin/touch post_$(RETURN).out\n"
        )
        from repro.dagman.runner import SubprocessExecutor

        dagman = parse_dagman_text(dagfile_text)
        executor = SubprocessExecutor(tmp_path)
        run = run_workflow(dagman, executor, run_script=executor.run_script)
        assert run.succeeded
        assert (tmp_path / "pre.out").is_file()
        assert (tmp_path / "job.out").is_file()
        assert (tmp_path / "post_0.out").is_file()


class TestMacros:
    def test_expand_known(self):
        assert expand_macros("p=$(jobpriority)", {"jobpriority": "5"}) == "p=5"

    def test_unknown_expands_empty(self):
        assert expand_macros("x$(nope)y", {}) == "xy"

    def test_executor_sees_vars_and_job(self):
        seen = {}

        def execute(decl, macros):
            seen[decl.name] = dict(macros)
            return 0

        dagman = parse_dagman_text(
            'JOB a a.sub\nVARS a site="x" jobpriority="7"\n'
        )
        run_workflow(dagman, execute)
        assert seen["a"]["site"] == "x"
        assert seen["a"]["jobpriority"] == "7"
        assert seen["a"]["job"] == "a"


class TestSubprocessExecutor:
    def test_runs_real_commands(self, tmp_path):
        (tmp_path / "touch.sub").write_text(
            "executable = /usr/bin/touch\narguments = out_$(JOB).txt\nqueue\n"
        )
        dagman = parse_dagman_text(
            "JOB first touch.sub\nJOB second touch.sub\n"
            "PARENT first CHILD second\n"
        )
        run = run_workflow(dagman, SubprocessExecutor(tmp_path))
        assert run.succeeded
        assert (tmp_path / "out_first.txt").is_file()
        assert (tmp_path / "out_second.txt").is_file()

    def test_nonzero_exit_fails_job(self, tmp_path):
        (tmp_path / "fail.sub").write_text(
            "executable = /bin/false\nqueue\n"
        )
        dagman = parse_dagman_text("JOB x fail.sub\n")
        run = run_workflow(dagman, SubprocessExecutor(tmp_path))
        assert run.outcomes["x"].state is JobState.FAILED

    def test_missing_executable_attr(self, tmp_path):
        (tmp_path / "bad.sub").write_text("universe = vanilla\nqueue\n")
        dagman = parse_dagman_text("JOB x bad.sub\n")
        with pytest.raises(ValueError, match="no executable"):
            run_workflow(dagman, SubprocessExecutor(tmp_path))

    def test_dir_resolution(self, tmp_path):
        sub = tmp_path / "inner"
        sub.mkdir()
        (sub / "touch.sub").write_text(
            "executable = /usr/bin/touch\narguments = here.txt\nqueue\n"
        )
        dagman = parse_dagman_text("JOB x touch.sub DIR inner\n")
        run = run_workflow(dagman, SubprocessExecutor(tmp_path))
        assert run.succeeded
        assert (sub / "here.txt").is_file()
