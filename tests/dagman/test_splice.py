"""Tests for SPLICE flattening and SUBDAG handling."""

import pytest

from repro.dagman.model import DagmanFile
from repro.dagman.parser import DagmanParseError, parse_dagman_text
from repro.dagman.splice import (
    SpliceError,
    flatten_dagman,
    flatten_dagman_file,
)

INNER = """\
JOB in1 in1.sub
JOB in2 in2.sub
JOB in3 in3.sub
PARENT in1 CHILD in2
PARENT in1 CHILD in3
VARS in2 site="remote"
"""

OUTER = """\
JOB setup setup.sub
JOB teardown teardown.sub
SPLICE block inner.dag
PARENT setup CHILD block
PARENT block CHILD teardown
"""


def loader(files):
    parsed = {name: parse_dagman_text(text) for name, text in files.items()}

    def load(ref):
        return parsed[ref]

    return load


class TestParsing:
    def test_splice_statement(self):
        f = parse_dagman_text(OUTER)
        assert f.splices["block"].file == "inner.dag"

    def test_splice_with_dir(self):
        f = parse_dagman_text("SPLICE s sub.dag DIR work\n")
        assert f.splices["s"].directory == "work"

    def test_splice_validation(self):
        with pytest.raises(DagmanParseError):
            parse_dagman_text("SPLICE onlyname\n")
        with pytest.raises(DagmanParseError, match="duplicate"):
            parse_dagman_text("SPLICE s a.dag\nSPLICE s b.dag\n")
        with pytest.raises(DagmanParseError, match="unexpected"):
            parse_dagman_text("SPLICE s a.dag FROB nicate\n")

    def test_subdag_external_is_a_job(self):
        f = parse_dagman_text("SUBDAG EXTERNAL child child.dag\n")
        assert f.jobs["child"].submit_file == "child.dag"

    def test_subdag_validation(self):
        with pytest.raises(DagmanParseError, match="EXTERNAL"):
            parse_dagman_text("SUBDAG INTERNAL x y.dag\n")

    def test_to_dag_requires_flat(self):
        f = parse_dagman_text(OUTER)
        with pytest.raises(ValueError, match="flatten"):
            f.to_dag()


class TestFlatten:
    def test_jobs_prefixed(self):
        flat = flatten_dagman(
            parse_dagman_text(OUTER), loader({"inner.dag": INNER})
        )
        assert set(flat.jobs) == {
            "setup",
            "teardown",
            "block+in1",
            "block+in2",
            "block+in3",
        }

    def test_arcs_attach_to_sources_and_sinks(self):
        flat = flatten_dagman(
            parse_dagman_text(OUTER), loader({"inner.dag": INNER})
        )
        arcs = set(flat.arcs)
        assert ("setup", "block+in1") in arcs          # inner source
        assert ("block+in2", "teardown") in arcs       # inner sinks
        assert ("block+in3", "teardown") in arcs
        assert ("block+in1", "block+in2") in arcs      # inner arc kept

    def test_vars_carried_over(self):
        flat = flatten_dagman(
            parse_dagman_text(OUTER), loader({"inner.dag": INNER})
        )
        assert flat.vars_["block+in2"]["site"] == "remote"

    def test_dag_structure(self):
        flat = flatten_dagman(
            parse_dagman_text(OUTER), loader({"inner.dag": INNER})
        )
        dag = flat.to_dag()
        assert dag.n == 5
        assert [dag.label(u) for u in dag.sources()] == ["setup"]
        assert [dag.label(u) for u in dag.sinks()] == ["teardown"]

    def test_dir_composes(self):
        outer = "SPLICE s inner.dag DIR outerdir\n"
        inner = "JOB j j.sub DIR innerdir\n"
        flat = flatten_dagman(
            parse_dagman_text(outer), loader({"inner.dag": inner})
        )
        assert flat.jobs["s+j"].directory == "outerdir/innerdir"

    def test_splice_to_splice_arcs(self):
        outer = (
            "SPLICE a inner.dag\nSPLICE b inner.dag\nPARENT a CHILD b\n"
        )
        flat = flatten_dagman(
            parse_dagman_text(outer), loader({"inner.dag": INNER})
        )
        assert ("a+in2", "b+in1") in flat.arcs
        assert ("a+in3", "b+in1") in flat.arcs

    def test_flat_input_returned_unchanged(self):
        f = parse_dagman_text("JOB a a.sub\n")
        assert flatten_dagman(f, loader({})) is f

    def test_unflattened_loader_rejected(self):
        nested = "SPLICE deep other.dag\n"
        with pytest.raises(SpliceError, match="unflattened"):
            flatten_dagman(
                parse_dagman_text(OUTER), loader({"inner.dag": nested})
            )


class TestFlattenFile:
    def _write(self, tmp_path, name, text):
        (tmp_path / name).write_text(text)

    def test_nested_recursion(self, tmp_path):
        self._write(tmp_path, "leaf.dag", "JOB x x.sub\n")
        self._write(tmp_path, "mid.dag", "SPLICE inner leaf.dag\nJOB m m.sub\nPARENT m CHILD inner\n")
        self._write(tmp_path, "top.dag", "SPLICE block mid.dag\n")
        flat = flatten_dagman_file(tmp_path / "top.dag")
        assert set(flat.jobs) == {"block+m", "block+inner+x"}
        assert ("block+m", "block+inner+x") in flat.arcs

    def test_cycle_detected(self, tmp_path):
        self._write(tmp_path, "a.dag", "SPLICE b b.dag\n")
        self._write(tmp_path, "b.dag", "SPLICE a a.dag\n")
        with pytest.raises(SpliceError, match="recursive"):
            flatten_dagman_file(tmp_path / "a.dag")

    def test_missing_file(self, tmp_path):
        self._write(tmp_path, "a.dag", "SPLICE b nowhere.dag\n")
        with pytest.raises(SpliceError, match="not found"):
            flatten_dagman_file(tmp_path / "a.dag")

    def test_tool_integration(self, tmp_path):
        self._write(tmp_path, "inner.dag", INNER)
        self._write(tmp_path, "outer.dag", OUTER)
        from repro.core.tool import prioritize_dagman_file

        with pytest.raises(ValueError, match="SPLICE"):
            prioritize_dagman_file(tmp_path / "outer.dag")
        out = tmp_path / "flat.dag"
        result = prioritize_dagman_file(tmp_path / "outer.dag", output=out)
        assert result.priorities["setup"] == 5
        text = out.read_text()
        assert "JOB block+in1" in text
        assert 'VARS block+in1 jobpriority=' in text
