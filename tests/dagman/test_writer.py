"""Tests for DAGMan serialization and instrumentation round-trips."""

from repro.dag.graph import DagBuilder
from repro.dagman.model import DagmanFile
from repro.dagman.parser import parse_dagman_text
from repro.dagman.writer import dag_to_dagman, write_dagman_file


def fig3_builder():
    b = DagBuilder()
    for name in "abcde":
        b.add_job(name)
    b.add_dependency("a", "b")
    b.add_dependency("c", "d")
    b.add_dependency("c", "e")
    return b.build()


class TestDagToDagman:
    def test_jobs_and_arcs(self):
        dagman = dag_to_dagman(fig3_builder())
        assert list(dagman.jobs) == list("abcde")
        assert ("c", "d") in dagman.arcs

    def test_default_submit_files(self):
        dagman = dag_to_dagman(fig3_builder())
        assert dagman.jobs["a"].submit_file == "a.sub"

    def test_custom_submit_mapping(self):
        dagman = dag_to_dagman(
            fig3_builder(), submit_file_for=lambda n: f"jsdf/{n}.submit"
        )
        assert dagman.jobs["b"].submit_file == "jsdf/b.submit"

    def test_round_trips_through_parser(self):
        dagman = dag_to_dagman(fig3_builder())
        parsed = parse_dagman_text(dagman.render())
        assert list(parsed.jobs) == list(dagman.jobs)
        assert parsed.arcs == dagman.arcs
        dag = parsed.to_dag()
        assert set(dag.arcs()) == set(fig3_builder().arcs())


class TestSetPriorities:
    def test_appends_vars_in_declaration_order(self):
        dagman = dag_to_dagman(fig3_builder())
        dagman.set_priorities({"c": 5, "a": 4})
        text = dagman.render()
        assert text.index('VARS a jobpriority="4"') < text.index(
            'VARS c jobpriority="5"'
        )

    def test_unknown_job_rejected(self):
        dagman = dag_to_dagman(fig3_builder())
        try:
            dagman.set_priorities({"ghost": 1})
        except KeyError as e:
            assert "ghost" in str(e)
        else:
            raise AssertionError("expected KeyError")

    def test_set_priority_unknown_job(self):
        dagman = DagmanFile()
        try:
            dagman.set_priority("nope", 1)
        except KeyError:
            pass
        else:
            raise AssertionError("expected KeyError")

    def test_render_empty(self):
        assert DagmanFile().render() == ""


class TestWriteFile:
    def test_writes_render(self, tmp_path):
        dagman = dag_to_dagman(fig3_builder())
        path = tmp_path / "out.dag"
        write_dagman_file(dagman, path)
        assert path.read_text() == dagman.render()
        assert path.read_text().endswith("\n")
