"""Parser → writer → parser round-trips on *generated DAGMan text*.

``test_roundtrip_fuzz.py`` starts from random ``Dag`` structures and
checks what the writer emits; this file closes the opposite gap: start
from randomly generated DAGMan *files* using the whole statement surface
(JOB flags, DATA, SUBDAG, multi-way PARENT/CHILD, VARS with escaped
quotes, RETRY with UNLESS-EXIT, PRE/POST scripts, comments, preserved
directives, mixed keyword case), push them through
``write_dagman_file`` and assert the re-parsed structure is identical —
and that writing is idempotent byte-for-byte.
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.dagman.parser import parse_dagman_file, parse_dagman_text
from repro.dagman.writer import write_dagman_file

COMMON = settings(
    max_examples=50, suppress_health_check=[HealthCheck.too_slow], deadline=None
)

_NAME_ALPHABET = "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_.-"
_VALUE_ALPHABET = (
    "abcdefghijklmnopqrstuvwxyz ABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789"
    " !$%&'()*+,-./:;<=>?@[]^_`{|}~"
)


def _cased(draw, keyword: str) -> str:
    """The keyword in upper, lower or capitalized case (all legal)."""
    style = draw(st.sampled_from(["upper", "lower", "title"]))
    return getattr(keyword, style)()


@st.composite
def _job_names(draw, max_jobs: int = 8) -> list[str]:
    n = draw(st.integers(min_value=1, max_value=max_jobs))
    names = []
    for i in range(n):
        stem = draw(
            st.text(alphabet=_NAME_ALPHABET, min_size=1, max_size=6).filter(
                lambda s: s[0] not in ".-"
            )
        )
        names.append(f"{stem}_{i}")  # suffix guarantees uniqueness
    return names


@st.composite
def _vars_value(draw) -> str:
    """A quoted-value body; may contain spaces and escaped quotes."""
    parts = draw(
        st.lists(
            st.one_of(
                st.text(alphabet=_VALUE_ALPHABET, min_size=0, max_size=8),
                st.just('\\"'),
            ),
            min_size=0,
            max_size=3,
        )
    )
    return "".join(parts)


@st.composite
def dagman_texts(draw) -> str:
    """Random DAGMan file text using the full supported statement set."""
    names = draw(_job_names())
    lines: list[str] = []

    # Declarations first so PARENT/CHILD always references declared jobs
    # (required by to_dag(); the parser itself does not care).
    for name in names:
        kind = draw(st.sampled_from(["job", "job", "data", "subdag"]))
        if kind == "subdag":
            line = f"{_cased(draw, 'SUBDAG')} EXTERNAL {name} {name}.dag"
            if draw(st.booleans()):
                line += f" DIR run/{name}"
        else:
            keyword = _cased(draw, "JOB" if kind == "job" else "DATA")
            line = f"{keyword} {name} {name}.sub"
            if kind == "job":
                if draw(st.booleans()):
                    line += f" DIR work/{name}"
                if draw(st.booleans()):
                    line += " NOOP"
                if draw(st.booleans()):
                    line += " DONE"
        lines.append(line)

    extra: list[str] = []

    # PARENT p... CHILD c... with disjoint sides (p == c is rejected).
    # All statements respect one hidden topological order so the file
    # stays acyclic (to_dag() would otherwise raise CycleError).
    order = draw(st.permutations(names))
    for _ in range(draw(st.integers(min_value=0, max_value=4))):
        if len(names) < 2:
            break
        split = draw(st.integers(min_value=1, max_value=len(names) - 1))
        parents = order[:split][: draw(st.integers(1, 3))]
        children = order[split:][: draw(st.integers(1, 3))]
        extra.append(
            f"{_cased(draw, 'PARENT')} {' '.join(parents)}"
            f" {_cased(draw, 'CHILD')} {' '.join(children)}"
        )

    # VARS with one to three macro="value" assignments.
    for name in draw(st.lists(st.sampled_from(names), max_size=3)):
        macros = draw(
            st.lists(
                st.text(alphabet="abcdefghijklmnop_", min_size=1, max_size=5),
                min_size=1,
                max_size=3,
                unique=True,
            )
        )
        assignments = " ".join(
            f'{macro}="{draw(_vars_value())}"' for macro in macros
        )
        extra.append(f"{_cased(draw, 'VARS')} {name} {assignments}")

    # RETRY, optionally with the preserved UNLESS-EXIT clause.
    for name in draw(
        st.lists(st.sampled_from(names), max_size=3, unique=True)
    ):
        count = draw(st.integers(min_value=0, max_value=5))
        clause = f" UNLESS-EXIT {draw(st.integers(1, 4))}" if draw(
            st.booleans()
        ) else ""
        extra.append(f"{_cased(draw, 'RETRY')} {name} {count}{clause}")

    # At most one PRE and one POST script per job.
    for name in draw(st.lists(st.sampled_from(names), max_size=3, unique=True)):
        for when in draw(
            st.lists(st.sampled_from(["PRE", "POST"]), max_size=2, unique=True)
        ):
            args = " ".join(
                draw(
                    st.lists(
                        st.text(alphabet=_NAME_ALPHABET, min_size=1, max_size=5),
                        max_size=2,
                    )
                )
            )
            extra.append(
                f"{_cased(draw, 'SCRIPT')} {when} {name} ./hook.sh"
                + (f" {args}" if args else "")
            )

    # Recognized-but-unmodelled directives round-trip verbatim.
    directive_pool = [
        "CONFIG dagman.config",
        f"PRIORITY {names[0]} 7",
        f"CATEGORY {names[0]} bulk",
        "MAXJOBS bulk 3",
        "DOT workflow.dot",
        f"ABORT-DAG-ON {names[0]} 1",
    ]
    extra.extend(
        draw(st.lists(st.sampled_from(directive_pool), max_size=3, unique=True))
    )

    # Comments and blank lines anywhere between statements.
    for stmt in draw(st.permutations(extra)):
        if draw(st.booleans()):
            lines.append("")
        if draw(st.booleans()):
            lines.append("# " + draw(st.text(alphabet=_VALUE_ALPHABET, max_size=20)))
        lines.append(stmt)

    return "\n".join(lines) + draw(st.sampled_from(["", "\n"]))


def _structure(dagman) -> tuple:
    return (
        dagman.jobs,
        dagman.arcs,
        dagman.vars_,
        dagman.retries,
        dagman.scripts,
        dagman.splices,
    )


def _write_and_reparse(dagman):
    """``write_dagman_file`` to a real path, then ``parse_dagman_file``."""
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "workflow.dag"
        write_dagman_file(dagman, path)
        return parse_dagman_file(path), path.read_text()


@COMMON
@given(dagman_texts())
def test_parse_write_parse_preserves_structure(text):
    first = parse_dagman_text(text)
    second, written = _write_and_reparse(first)
    assert _structure(second) == _structure(first)
    # Writing the re-parsed model is byte-identical: one round trip
    # reaches the fixed point.
    assert second.render() == written == first.render()


@COMMON
@given(dagman_texts())
def test_round_trip_preserves_dependency_dag(text):
    first = parse_dagman_text(text)
    second, _ = _write_and_reparse(first)
    dag_a, dag_b = first.to_dag(), second.to_dag()
    assert dag_b.labels == dag_a.labels
    assert list(dag_b.arcs()) == list(dag_a.arcs())


@COMMON
@given(dagman_texts(), st.integers(min_value=-5, max_value=99))
def test_instrumentation_survives_round_trip(text, base):
    """set_priorities → write → parse keeps priorities and structure."""
    first = parse_dagman_text(text)
    priorities = {
        name: base + i for i, name in enumerate(first.job_names())
    }
    first.set_priorities(priorities)
    second, _ = _write_and_reparse(first)
    for name, priority in priorities.items():
        assert second.get_priority(name) == priority
    assert second.jobs == first.jobs
    assert second.arcs == first.arcs
    assert second.scripts == first.scripts
    assert second.retries == first.retries
