"""IncrementalScheduler: byte-identity with the from-scratch oracle.

The scheduler's whole value proposition is that its fast path is
*indistinguishable* from ``reprioritize_remnant`` — same priorities,
same remnant fingerprint — while reusing the transitive reduction and
component schedules across advances.  These tests walk real workloads
through progressively larger executed sets and compare every step.
"""

import pytest

from repro.core.fifo import fifo_schedule
from repro.core.rescheduling import reprioritize_remnant
from repro.live.incremental import IncrementalScheduler
from repro.workloads.registry import get_workload

PAPER_WORKLOADS = ["airsn-small", "inspiral-small", "montage-small",
                   "sdss-small"]


def closed_prefixes(dag, n_steps=8):
    """Precedence-closed executed sets of growing size (FIFO prefixes)."""
    order = fifo_schedule(dag)
    return [set(order[: (k * dag.n) // n_steps]) for k in range(n_steps + 1)]


@pytest.mark.parametrize("name", PAPER_WORKLOADS)
def test_matches_oracle_across_execution(name):
    dag = get_workload(name)
    scheduler = IncrementalScheduler(dag)
    for executed in closed_prefixes(dag):
        oracle = reprioritize_remnant(dag, executed)
        assert scheduler.priorities(executed) == oracle.priorities
        assert (
            scheduler.remnant_fingerprint(executed)
            == oracle.remnant.fingerprint()
        )


@pytest.mark.parametrize("name", PAPER_WORKLOADS)
def test_full_mode_is_the_oracle(name):
    dag = get_workload(name)
    fast = IncrementalScheduler(dag)
    slow = IncrementalScheduler(dag, mode="full")
    executed = closed_prefixes(dag, n_steps=2)[1]
    assert fast.priorities(executed) == slow.priorities(executed)
    assert slow.full_recomputes == 1
    assert fast.full_recomputes == 0


def test_one_at_a_time_execution_matches_oracle(fig3_dag):
    """The serving-path granularity: one completion per advance."""
    scheduler = IncrementalScheduler(fig3_dag)
    executed = set()
    for u in fifo_schedule(fig3_dag):
        executed.add(u)
        oracle = reprioritize_remnant(fig3_dag, executed)
        assert scheduler.priorities(executed) == oracle.priorities


def test_component_cache_is_reused_across_advances():
    dag = get_workload("airsn-small")
    scheduler = IncrementalScheduler(dag)
    order = fifo_schedule(dag)
    scheduler.priorities(set())
    misses_after_first = scheduler.component_misses
    scheduler.priorities(set(order[:1]))
    scheduler.priorities(set(order[:2]))
    # Completing one job perturbs one corner of the dag: most blocks
    # replay from cache instead of being re-recognized.
    assert scheduler.component_hits > 0
    assert scheduler.component_misses < 3 * misses_after_first


def test_unknown_mode_rejected(fig3_dag):
    with pytest.raises(ValueError, match="mode"):
        IncrementalScheduler(fig3_dag, mode="telepathic")


def test_stats_are_json_shaped(fig3_dag):
    import json

    scheduler = IncrementalScheduler(fig3_dag)
    scheduler.priorities(set())
    stats = scheduler.stats()
    assert stats["mode"] == "incremental"
    assert stats["recomputes"] == 1
    json.dumps(stats)  # must be serializable (it rides in GET /session)


def test_empty_and_fully_executed_extremes(fig3_dag):
    scheduler = IncrementalScheduler(fig3_dag)
    n = fig3_dag.n
    assert sorted(scheduler.priorities(set())) == list(range(1, n + 1))
    assert scheduler.priorities(set(range(n))) == [0] * n
