"""LivePrioPolicy: rescheduling inside the simulator."""

import pickle

import numpy as np

import pytest

from repro.live.policy import LivePrioPolicy
from repro.core.prio import prio_schedule
from repro.sim.engine import SimParams, make_policy, simulate
from repro.sim.replication import policy_factory
from repro.workloads.registry import get_workload

PARAMS = SimParams(mu_bit=1.0, mu_bs=8.0)


def test_pop_order_follows_priorities(fig3_dag):
    policy = LivePrioPolicy(fig3_dag)
    priorities = prio_schedule(fig3_dag).priorities
    sources = [u for u in range(fig3_dag.n) if fig3_dag.in_degree(u) == 0]
    for u in sources:
        policy.push(u)
    assert len(policy) == len(sources)
    popped = [policy.pop() for _ in sources]
    assert popped == sorted(sources, key=lambda u: -priorities[u])
    assert len(policy) == 0


def test_on_complete_triggers_reprioritization(fig3_dag):
    policy = LivePrioPolicy(fig3_dag)
    recomputes_before = policy._scheduler.recomputes
    source = next(
        u for u in range(fig3_dag.n) if fig3_dag.in_degree(u) == 0
    )
    policy.on_complete(source)
    # Lazy: nothing recomputed until the next pop needs priorities.
    assert policy._scheduler.recomputes == recomputes_before
    for v in fig3_dag.children(source):
        if all(p == source for p in fig3_dag.parents(v)):
            policy.push(v)
    policy.push(
        next(
            u
            for u in range(fig3_dag.n)
            if u != source and fig3_dag.in_degree(u) == 0
        )
    )
    policy.pop()
    assert policy._scheduler.recomputes == recomputes_before + 1


@pytest.mark.parametrize("name", ["airsn-small", "montage-small"])
def test_incremental_and_full_modes_simulate_identically(name):
    dag = get_workload(name)
    fast = simulate(dag, LivePrioPolicy(dag), PARAMS, np.random.default_rng(11))
    slow = simulate(dag, LivePrioPolicy(dag, mode="full"), PARAMS,
                    np.random.default_rng(11))
    assert fast == slow


def test_make_policy_wires_the_dag(fig3_dag):
    policy = make_policy("prio-live", dag=fig3_dag)
    assert isinstance(policy, LivePrioPolicy)
    with pytest.raises(ValueError, match="needs the dag"):
        make_policy("prio-live")


def test_policy_factory_pickles_with_dag(fig3_dag):
    factory = policy_factory("prio-live", dag=fig3_dag)
    clone = pickle.loads(pickle.dumps(factory))
    a = simulate(fig3_dag, factory(np.random.default_rng(0)), PARAMS,
                 np.random.default_rng(3))
    b = simulate(fig3_dag, clone(np.random.default_rng(0)), PARAMS,
                 np.random.default_rng(3))
    assert a == b


def test_live_policy_draws_nothing_from_the_generator(fig3_dag):
    """Common-random-numbers comparability: prio-live consumes the same
    stream positions as any other policy (none)."""
    live = simulate(fig3_dag, LivePrioPolicy(fig3_dag), PARAMS,
                    np.random.default_rng(7))
    again = simulate(fig3_dag, LivePrioPolicy(fig3_dag), PARAMS,
                    np.random.default_rng(7))
    assert live == again
