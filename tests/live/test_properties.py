"""The live-rescheduling correctness contract, property-tested.

After ANY legal event sequence, the session's priorities must be
byte-identical to running ``reprioritize_remnant`` from scratch on the
same executed set, and the streamed remnant fingerprint must equal the
fingerprint of the actually-constructed remnant dag — at every step,
not just at the end.  Random dags come from the shared perf strategies;
the four paper workloads run seeded random streams of mixed batches.
"""

import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.rescheduling import reprioritize_remnant
from repro.live.session import EVENT_KINDS, LiveSession
from repro.workloads.registry import get_workload

from ..perf.strategies import dags

PAPER_WORKLOADS = ["airsn-small", "inspiral-small", "montage-small",
                   "sdss-small"]

PROPERTY = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def random_batch(dag, executed, rng, max_events=4):
    """One legal event batch against *executed* (updates a scratch copy
    so intra-batch completion chains are exercised too)."""
    scratch = set(executed)
    events = []
    for _ in range(rng.randint(1, max_events)):
        pending = [u for u in range(dag.n) if u not in scratch]
        if not pending:
            break
        kind = rng.choice(EVENT_KINDS)
        if kind == "complete":
            ready = [
                u
                for u in pending
                if all(p in scratch for p in dag.parents(u))
            ]
            if not ready:
                continue
            job = rng.choice(ready)
            scratch.add(job)
        else:
            job = rng.choice(pending)
        events.append({"kind": kind, "job": job})
    return events


def assert_session_matches_oracle(session, dag):
    executed = session.executed
    oracle = reprioritize_remnant(dag, executed)
    assert session.priorities == oracle.priorities
    summary = session.state_summary()
    assert summary["remnant_fingerprint"] == oracle.remnant.fingerprint()
    assert summary["dag_fingerprint"] == dag.fingerprint()
    assert summary["n_pending"] == dag.n - len(executed)


def drive(dag, seed, n_batches):
    rng = random.Random(seed)
    session = LiveSession(dag)
    assert_session_matches_oracle(session, dag)
    for _ in range(n_batches):
        events = random_batch(dag, session.executed, rng)
        if not events:
            break
        session.advance(events)
        assert_session_matches_oracle(session, dag)
    return session


@PROPERTY
@given(dag=dags(max_n=12), seed=st.integers(min_value=0, max_value=2**32 - 1))
def test_random_dags_random_event_sequences(dag, seed):
    drive(dag, seed, n_batches=12)


@PROPERTY
@given(dag=dags(max_n=10, min_n=1),
       seed=st.integers(min_value=0, max_value=2**32 - 1))
def test_random_dags_run_to_completion(dag, seed):
    """Bias toward completions so sessions actually finish: the empty
    remnant (all priorities zero) is part of the contract too."""
    rng = random.Random(seed)
    session = LiveSession(dag)
    while session.n_pending:
        ready = [
            u
            for u in range(dag.n)
            if u not in session.executed
            and all(p in session.executed for p in dag.parents(u))
        ]
        take = rng.randint(1, len(ready))
        session.advance(
            [{"kind": "complete", "job": u} for u in ready[:take]]
        )
        assert_session_matches_oracle(session, dag)
    assert session.priorities == [0] * dag.n


@pytest.mark.parametrize("name", PAPER_WORKLOADS)
def test_paper_workloads_random_streams(name):
    dag = get_workload(name)
    session = drive(dag, seed=20060427, n_batches=10)
    assert session.events_applied > 0
