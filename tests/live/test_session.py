"""LiveSession semantics: atomic batches, sequence numbers, deltas."""

import pytest

from repro.core.prio import prio_schedule
from repro.core.rescheduling import reprioritize_remnant
from repro.live.session import (
    EVENT_KINDS,
    EventError,
    LiveSession,
    SequenceError,
    validate_events,
)


def eligible(dag, executed):
    return [
        u
        for u in range(dag.n)
        if u not in executed
        and all(p in executed for p in dag.parents(u))
    ]


def test_fresh_session_matches_full_prio(fig3_dag):
    session = LiveSession(fig3_dag)
    assert session.seq == 0
    assert session.priorities == prio_schedule(fig3_dag).priorities
    assert session.n_pending == fig3_dag.n


def test_complete_shrinks_remnant_and_reports_delta(fig3_dag):
    session = LiveSession(fig3_dag)
    before = session.priorities
    job = eligible(fig3_dag, set())[0]
    delta = session.advance([{"kind": "complete", "job": job}])
    assert delta["seq"] == 1
    assert delta["recompute"] == "incremental"
    assert delta["n_pending"] == fig3_dag.n - 1
    after = session.priorities
    # The delta is exactly the changed positions, keyed by *string* job
    # id (JSON round-trips dict keys to strings; a delta replayed from a
    # checkpoint must encode byte-identically to the original).
    assert delta["changed"] == {
        str(u): after[u]
        for u in range(fig3_dag.n)
        if after[u] != before[u]
    }
    assert all(isinstance(k, str) for k in delta["changed"])
    assert after == reprioritize_remnant(fig3_dag, {job}).priorities


def test_failure_only_batch_skips_recompute(fig3_dag):
    session = LiveSession(fig3_dag)
    recomputes_before = session.scheduler.recomputes
    delta = session.advance(
        [
            {"kind": "fail", "job": 1},
            {"kind": "straggler_timeout", "job": 2},
            {"kind": "retry_exhausted", "job": 3},
        ]
    )
    assert delta["recompute"] == "skipped"
    assert delta["changed"] == {}
    assert session.scheduler.recomputes == recomputes_before
    summary = session.state_summary()
    assert summary["failed"] == [1, 3]
    assert summary["exhausted"] == [3]
    assert summary["stragglers"] == [2]


def test_completion_clears_straggler_flag(fig3_dag):
    session = LiveSession(fig3_dag)
    job = eligible(fig3_dag, set())[0]
    session.advance([{"kind": "straggler_timeout", "job": job}])
    assert job in session.stragglers
    session.advance([{"kind": "complete", "job": job}])
    assert job not in session.stragglers


def test_batch_is_atomic(fig3_dag):
    """A batch with one bad event changes nothing — not even the events
    that preceded the bad one."""
    session = LiveSession(fig3_dag)
    job = eligible(fig3_dag, set())[0]
    before = session.priorities
    with pytest.raises(EventError):
        session.advance(
            [
                {"kind": "complete", "job": job},
                {"kind": "complete", "job": 999},  # out of range
            ]
        )
    assert session.seq == 0
    assert session.executed == set()
    assert session.priorities == before


def test_intra_batch_chain_of_completions(fig3_dag):
    """Completing a parent and then its child in ONE batch is legal: the
    closure check runs against the batch's scratch state."""
    session = LiveSession(fig3_dag)
    first = eligible(fig3_dag, set())
    parent = next(u for u in first if fig3_dag.children(u))
    child = next(
        v
        for v in fig3_dag.children(parent)
        if all(p == parent or p in first for p in fig3_dag.parents(v))
    )
    others = [p for p in fig3_dag.parents(child) if p != parent]
    events = [{"kind": "complete", "job": u} for u in others]
    events += [
        {"kind": "complete", "job": parent},
        {"kind": "complete", "job": child},
    ]
    delta = session.advance(events)
    assert delta["applied"] == len(events)
    assert child in session.executed


def test_complete_before_parent_rejected(fig3_dag):
    session = LiveSession(fig3_dag)
    sink = next(
        u for u in range(fig3_dag.n)
        if fig3_dag.is_sink(u) and fig3_dag.in_degree(u)
    )
    with pytest.raises(EventError, match="cannot complete before") as info:
        session.advance([{"kind": "complete", "job": sink}])
    assert info.value.kind == "complete"
    assert info.value.job == sink


def test_double_complete_and_events_on_executed_rejected(fig3_dag):
    session = LiveSession(fig3_dag)
    job = eligible(fig3_dag, set())[0]
    session.advance([{"kind": "complete", "job": job}])
    with pytest.raises(EventError, match="completed twice"):
        session.advance([{"kind": "complete", "job": job}], seq=2)
    with pytest.raises(EventError, match="completed job"):
        session.advance([{"kind": "fail", "job": job}], seq=2)


def test_sequence_errors_carry_expected_and_got(fig3_dag):
    session = LiveSession(fig3_dag)
    with pytest.raises(SequenceError) as info:
        session.advance([], seq=7)
    assert info.value.expected == 1
    assert info.value.got == 7
    session.advance([])  # defaulted seq
    assert session.seq == 1


@pytest.mark.parametrize(
    "events",
    [
        "not-a-list",
        [17],
        [{"kind": "complete"}],
        [{"kind": "complete", "job": 0, "extra": 1}],
        [{"kind": "vanish", "job": 0}],
        [{"kind": "complete", "job": "zero"}],
        [{"kind": "complete", "job": True}],
    ],
)
def test_malformed_events_rejected(events):
    with pytest.raises(EventError):
        validate_events(events)


def test_validate_events_normalizes():
    events = [{"kind": kind, "job": i} for i, kind in enumerate(EVENT_KINDS)]
    assert validate_events(events) == [
        (kind, i) for i, kind in enumerate(EVENT_KINDS)
    ]


def test_replay_rebuilds_state_with_one_recompute(fig3_dag):
    live = LiveSession(fig3_dag)
    batches = []
    for seq in range(1, 4):
        job = eligible(fig3_dag, live.executed)[0]
        events = [{"kind": "complete", "job": job}]
        if seq == 2:
            events.append({"kind": "fail", "job": eligible(
                fig3_dag, live.executed | {job})[0]})
        live.advance(events, seq=seq)
        batches.append((seq, events))

    twin = LiveSession(fig3_dag)
    recomputes_at_start = twin.scheduler.recomputes
    twin.replay(batches)
    assert twin.scheduler.recomputes == recomputes_at_start + 1
    assert twin.seq == live.seq
    assert twin.executed == live.executed
    assert twin.fail_counts == live.fail_counts
    assert twin.priorities == live.priorities
    # Scheduler reuse counters are process-local diagnostics and differ
    # by construction (replay recomputes once); everything else matches.
    twin_summary, live_summary = twin.state_summary(), live.state_summary()
    twin_summary.pop("scheduler")
    live_summary.pop("scheduler")
    assert twin_summary == live_summary


def test_state_summary_fingerprints(fig3_dag):
    session = LiveSession(fig3_dag, session_id="abc.run")
    summary = session.state_summary()
    assert summary["session_id"] == "abc.run"
    assert summary["dag_fingerprint"] == fig3_dag.fingerprint()
    assert summary["remnant_fingerprint"] == fig3_dag.fingerprint()
    job = eligible(fig3_dag, set())[0]
    session.advance([{"kind": "complete", "job": job}])
    after = session.state_summary()
    assert after["dag_fingerprint"] == fig3_dag.fingerprint()
    remnant = reprioritize_remnant(fig3_dag, {job}).remnant
    assert after["remnant_fingerprint"] == remnant.fingerprint()
