"""SessionStore: identity, idempotent replay, durable recovery."""

import threading

import pytest

from repro.dag.io_json import dag_to_json, dumps_canonical
from repro.live.session import SequenceError, SessionError
from repro.live.store import (
    SessionExists,
    SessionStore,
    session_token,
    valid_session_name,
)


@pytest.fixture
def payload(fig3_dag):
    return dag_to_json(fig3_dag)


def first_eligible(dag, executed=()):
    executed = set(executed)
    return next(
        u
        for u in range(dag.n)
        if u not in executed
        and all(p in executed for p in dag.parents(u))
    )


# ----------------------------------------------------------------------
# Identity
# ----------------------------------------------------------------------


def test_session_token_is_deterministic_and_canonical(payload):
    reordered = dict(reversed(list(payload.items())))
    assert session_token(payload) == session_token(reordered)
    assert len(session_token(payload)) == 16
    other = dict(payload, n=payload["n"] + 1)
    assert session_token(other) != session_token(payload)


def test_session_id_embeds_token_and_name(payload):
    store = SessionStore()
    session = store.create(payload, name="run-1")
    assert session.session_id == f"{session_token(payload)}.run-1"


@pytest.mark.parametrize(
    "name", ["", "a" * 65, "bad/name", "sp ace", "tab\t"]
)
def test_bad_names_rejected(payload, name):
    assert not valid_session_name(name)
    with pytest.raises(SessionError):
        SessionStore().create(payload, name=name)


def test_create_rejects_bad_dag_payload():
    with pytest.raises(ValueError):
        SessionStore().create({"format": "repro-dag-v1", "n": 2,
                               "arcs": [[0, 0]]})


def test_duplicate_create_raises_session_exists(payload):
    store = SessionStore()
    store.create(payload, name="run")
    with pytest.raises(SessionExists) as info:
        store.create(payload, name="run")
    assert info.value.session_id.endswith(".run")
    # A different name is a different session over the same dag.
    store.create(payload, name="run2")
    assert len(store) == 2


# ----------------------------------------------------------------------
# Advance semantics
# ----------------------------------------------------------------------


def test_advance_and_idempotent_seq_replay(payload, fig3_dag):
    store = SessionStore()
    session = store.create(payload)
    job = first_eligible(fig3_dag)
    events = [{"kind": "complete", "job": job}]
    delta = store.advance(session.session_id, events, seq=1)
    # A retried request (same seq) replays the stored response without
    # reapplying — byte-identical on the wire.
    replayed = store.advance(session.session_id, events, seq=1)
    assert dumps_canonical(replayed) == dumps_canonical(delta)
    assert session.seq == 1
    with pytest.raises(SequenceError):
        store.advance(session.session_id, events, seq=5)


def test_advance_unknown_session_raises_keyerror(payload):
    with pytest.raises(KeyError):
        SessionStore().advance("0" * 16 + ".ghost", [], seq=1)


def test_summary_of_unknown_session_is_none():
    assert SessionStore().summary("0" * 16 + ".ghost") is None


# ----------------------------------------------------------------------
# Durability
# ----------------------------------------------------------------------


def test_recovery_restores_exact_state(tmp_path, payload, fig3_dag):
    store = SessionStore(directory=tmp_path)
    session = store.create(payload, name="durable")
    sid = session.session_id
    job = first_eligible(fig3_dag)
    store.advance(sid, [{"kind": "complete", "job": job}], seq=1)
    nxt = first_eligible(fig3_dag, {job})
    last = store.advance(
        sid,
        [{"kind": "fail", "job": nxt}, {"kind": "complete", "job": nxt}],
        seq=2,
    )
    expected = store.summary(sid)

    # A fresh process over the same directory (the respawned shard).
    # Scheduler reuse counters are process-local diagnostics (recovery
    # replays with one recompute), so they are excluded from equality.
    twin = SessionStore(directory=tmp_path)
    recovered_summary = twin.summary(sid)
    recovered_summary.pop("scheduler")
    expected.pop("scheduler")
    assert recovered_summary == expected
    assert twin.recovered == 1
    # The stored last delta replays byte-identically after recovery.
    recovered_last = twin.advance(
        sid,
        [{"kind": "fail", "job": nxt}, {"kind": "complete", "job": nxt}],
        seq=2,
    )
    assert dumps_canonical(recovered_last) == dumps_canonical(last)
    # And the *next* advance continues the sequence.
    third = first_eligible(fig3_dag, {job, nxt})
    delta = twin.advance(sid, [{"kind": "complete", "job": third}], seq=3)
    assert delta["seq"] == 3


def test_recovered_next_advance_matches_unkilled_twin(tmp_path, payload,
                                                      fig3_dag):
    """The store-level version of the chaos contract: a recovered store's
    next delta is byte-identical to one from a store that never died."""
    job = first_eligible(fig3_dag)
    nxt = first_eligible(fig3_dag, {job})
    events1 = [{"kind": "complete", "job": job}]
    events2 = [{"kind": "complete", "job": nxt}]

    unkilled = SessionStore(directory=tmp_path / "a")
    sid = unkilled.create(payload).session_id
    unkilled.advance(sid, events1, seq=1)
    expected = unkilled.advance(sid, events2, seq=2)

    killed = SessionStore(directory=tmp_path / "b")
    assert killed.create(payload).session_id == sid
    killed.advance(sid, events1, seq=1)
    recovered = SessionStore(directory=tmp_path / "b")  # the respawn
    delta = recovered.advance(sid, events2, seq=2)
    assert dumps_canonical(delta) == dumps_canonical(expected)


def test_duplicate_create_detected_on_disk(tmp_path, payload):
    SessionStore(directory=tmp_path).create(payload)
    with pytest.raises(SessionExists):
        SessionStore(directory=tmp_path).create(payload)


def test_path_traversal_ids_never_touch_disk(tmp_path, payload):
    store = SessionStore(directory=tmp_path)
    for evil in ("../../etc/passwd", "a/b", "..", "0" * 16 + ".ok/../x"):
        assert store.get(evil) is None


def test_in_memory_store_has_no_files(tmp_path, payload):
    store = SessionStore()
    store.create(payload)
    assert store.stats()["persistent"] is False
    assert list(tmp_path.iterdir()) == []


def test_concurrent_advances_serialize_per_session(payload, fig3_dag):
    """Racing advances under the per-session lock: exactly one of each
    seq applies; the rest replay or fail in sequence — state never tears."""
    store = SessionStore()
    sid = store.create(payload).session_id
    job = first_eligible(fig3_dag)
    outcomes = []

    def hammer():
        try:
            outcomes.append(
                store.advance(sid, [{"kind": "complete", "job": job}], seq=1)
            )
        except SessionError as exc:
            outcomes.append(exc)

    threads = [threading.Thread(target=hammer) for _ in range(8)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    deltas = [o for o in outcomes if isinstance(o, dict)]
    assert deltas  # at least the winner; retries replay the stored delta
    assert all(
        dumps_canonical(d) == dumps_canonical(deltas[0]) for d in deltas
    )
    assert store.get(sid).executed == {job}
