"""EventPlan / event_stream: deterministic session-driving streams."""

import pytest

from repro.core.rescheduling import reprioritize_remnant
from repro.live.session import LiveSession
from repro.live.stream import EventPlan, event_stream
from repro.workloads.registry import get_workload


def test_stream_is_deterministic(fig3_dag):
    plan = EventPlan(failures={1: 2}, stragglers={2})
    assert list(event_stream(fig3_dag, plan)) == list(
        event_stream(fig3_dag, plan)
    )


def test_clean_stream_completes_the_dag(fig3_dag):
    session = LiveSession(fig3_dag)
    for seq, events in event_stream(fig3_dag):
        session.advance(events, seq=seq)
    assert session.n_pending == 0
    assert session.priorities == [0] * fig3_dag.n


def test_stream_applies_cleanly_with_faults():
    dag = get_workload("airsn-small")
    plan = EventPlan(failures={3: 1, 7: 2}, stragglers={5, 9})
    session = LiveSession(dag)
    for seq, events in event_stream(dag, plan, batch_jobs=3):
        session.advance(events, seq=seq)
        oracle = reprioritize_remnant(dag, session.executed)
        assert session.priorities == oracle.priorities
    assert session.n_pending == 0
    assert session.fail_counts == {3: 1, 7: 2}


def test_exhausted_jobs_block_their_descendants(fig3_dag):
    source = next(
        u for u in range(fig3_dag.n) if fig3_dag.in_degree(u) == 0
    )
    descendants = set()
    frontier = [source]
    while frontier:
        u = frontier.pop()
        for v in fig3_dag.children(u):
            if v not in descendants:
                descendants.add(v)
                frontier.append(v)
    session = LiveSession(fig3_dag)
    for seq, events in event_stream(fig3_dag, EventPlan(exhausted={source})):
        session.advance(events, seq=seq)
    assert source not in session.executed
    assert session.exhausted == {source}
    assert not (descendants & session.executed) or all(
        # descendants with another fully-executed parent path may run;
        # ones that *need* the exhausted source may not
        any(p == source for p in fig3_dag.parents(v)) is False
        for v in descendants & session.executed
    )
    assert all(v not in session.executed
               for v in fig3_dag.children(source))


def test_priority_order_is_respected(fig3_dag):
    batches = list(event_stream(fig3_dag, batch_jobs=1))
    completions = [
        e["job"] for _, events in batches for e in events
        if e["kind"] == "complete"
    ]
    # One job per batch, picked as the highest-priority eligible job:
    # priorities strictly decrease along any eligible-at-once run, and
    # the whole dag completes.
    assert sorted(completions) == list(range(fig3_dag.n))


def test_split_ticks_separates_reports_from_completions():
    dag = get_workload("airsn-small")
    plan = EventPlan(failures={3: 1, 7: 2}, stragglers={5, 9})
    split = list(event_stream(dag, plan, batch_jobs=3, split_ticks=True))
    # Contiguous seq, and every batch is homogeneous: all reports or
    # all completions, never mixed.
    assert [seq for seq, _ in split] == list(range(1, len(split) + 1))
    for _, events in split:
        assert events
        kinds = {e["kind"] == "complete" for e in events}
        assert len(kinds) == 1
    # Same event multiset as the combined stream over the same plan.
    combined = list(event_stream(dag, plan, batch_jobs=3))
    flatten = lambda batches: sorted(
        (e["job"], e["kind"]) for _, events in batches for e in events
    )
    assert flatten(split) == flatten(combined)


def test_split_ticks_apply_cleanly_and_skip_recomputes():
    dag = get_workload("airsn-small")
    plan = EventPlan(failures={3: 1, 7: 2}, stragglers={5})
    session = LiveSession(dag)
    skipped = 0
    for seq, events in event_stream(dag, plan, batch_jobs=3,
                                    split_ticks=True):
        delta = session.advance(events, seq=seq)
        if delta["recompute"] == "skipped":
            skipped += 1
        oracle = reprioritize_remnant(dag, session.executed)
        assert session.priorities == oracle.priorities
    assert session.n_pending == 0
    assert session.fail_counts == {3: 1, 7: 2}
    # Report-only batches answered without touching the scheduler.
    assert skipped >= 1


def test_plan_validation():
    with pytest.raises(ValueError, match="negative"):
        EventPlan(failures={0: -1})
    assert EventPlan().empty
    assert not EventPlan(stragglers={1}).empty
    with pytest.raises(ValueError, match="batch_jobs"):
        next(event_stream(get_workload("airsn-small"), batch_jobs=0))
