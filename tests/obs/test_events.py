"""Tests for the JSONL telemetry log: schema, writer, reader, recorder."""

import io
import json

import numpy as np
import pytest

from repro.obs.events import (
    SCHEMA_VERSION,
    TelemetryWriter,
    read_telemetry,
    replication_record,
    validate_record,
)
from repro.obs.recorder import TelemetryRecorder
from repro.sim.engine import SimParams, make_policy, simulate
from repro.workloads.airsn import airsn


def sample_result(seed=0):
    dag = airsn(5)
    rng = np.random.default_rng(seed)
    params = SimParams(mu_bit=1.0, mu_bs=4.0)
    return params, simulate(dag, make_policy("fifo"), params, rng)


class TestValidateRecord:
    def test_accepts_minimal_records(self):
        validate_record({"schema": 1, "kind": "run", "command": "sweep"})
        validate_record(
            {"schema": 1, "kind": "stage", "stage": "combine", "seconds": 0.1}
        )
        validate_record(
            {"schema": 1, "kind": "cell", "workload": "x", "mu_bit": 1, "mu_bs": 2}
        )

    def test_rejects_non_object(self):
        with pytest.raises(ValueError, match="must be an object"):
            validate_record([1, 2])

    def test_rejects_wrong_schema(self):
        with pytest.raises(ValueError, match="schema"):
            validate_record({"schema": 99, "kind": "run", "command": "x"})

    def test_rejects_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown telemetry record kind"):
            validate_record({"schema": 1, "kind": "mystery"})

    def test_rejects_missing_field(self):
        with pytest.raises(ValueError, match="missing required field 'command'"):
            validate_record({"schema": 1, "kind": "run"})

    def test_rejects_wrong_type(self):
        with pytest.raises(ValueError, match="'seconds' must be Number"):
            validate_record(
                {"schema": 1, "kind": "stage", "stage": "x", "seconds": "fast"}
            )

    def test_rejects_bool_masquerading_as_number(self):
        with pytest.raises(ValueError, match="got bool"):
            validate_record(
                {"schema": 1, "kind": "stage", "stage": "x", "seconds": True}
            )

    def test_allows_unknown_extra_fields(self):
        validate_record(
            {"schema": 1, "kind": "run", "command": "x", "future_field": [1]}
        )


class TestReplicationRecord:
    def test_valid_by_construction(self):
        params, result = sample_result()
        record = replication_record(
            workload="airsn", policy="fifo", rep=0, params=params, result=result
        )
        validate_record(record)
        assert record["schema"] == SCHEMA_VERSION
        assert record["mu_bs"] == 4.0
        assert record["n_jobs"] == result.n_jobs
        assert record["unserved_workers"] == result.unserved_workers
        assert record["elapsed_seconds"] is None

    def test_carries_timing_and_extras(self):
        params, result = sample_result()
        record = replication_record(
            workload="airsn",
            policy="prio",
            rep=3,
            params=params,
            result=result,
            elapsed_seconds=0.125,
            seed=42,
        )
        assert record["elapsed_seconds"] == 0.125
        assert record["seed"] == 42


class TestWriterAndReader:
    def test_round_trip_through_file(self, tmp_path):
        """Tier-1 guarantee: everything written parses back identically."""
        params, result = sample_result()
        path = tmp_path / "telemetry.jsonl"
        with TelemetryWriter(path) as writer:
            writer.write({"schema": 1, "kind": "run", "command": "test"})
            for rep in range(3):
                writer.write(
                    replication_record(
                        workload="airsn",
                        policy="fifo",
                        rep=rep,
                        params=params,
                        result=result,
                        elapsed_seconds=0.01 * rep,
                    )
                )
            writer.write(
                {"schema": 1, "kind": "stage", "stage": "simulate", "seconds": 0.5}
            )
            assert writer.n_records == 5
        records = read_telemetry(path)
        assert len(records) == 5
        assert [r["kind"] for r in records] == [
            "run", "replication", "replication", "replication", "stage",
        ]
        # Line-by-line JSON equality: the log is exactly what was written.
        lines = path.read_text().splitlines()
        assert [json.loads(line) for line in lines] == records

    def test_writer_rejects_invalid_before_touching_file(self, tmp_path):
        path = tmp_path / "telemetry.jsonl"
        writer = TelemetryWriter(path)
        with pytest.raises(ValueError):
            writer.write({"schema": 1, "kind": "nope"})
        writer.close()
        assert read_telemetry(path) == []

    def test_reader_reports_line_numbers(self):
        bad = io.StringIO(
            '{"schema": 1, "kind": "run", "command": "x"}\nnot json\n'
        )
        with pytest.raises(ValueError, match="line 2"):
            read_telemetry(bad)

    def test_reader_never_returns_partial(self, tmp_path):
        path = tmp_path / "telemetry.jsonl"
        path.write_text(
            '{"schema": 1, "kind": "run", "command": "x"}\n'
            '{"schema": 1, "kind": "mystery"}\n'
        )
        with pytest.raises(ValueError, match="line 2"):
            read_telemetry(path)

    def test_blank_lines_skipped(self):
        src = io.StringIO('\n{"schema": 1, "kind": "run", "command": "x"}\n\n')
        assert len(read_telemetry(src)) == 1


class TestTelemetryRecorder:
    def test_open_writes_run_header(self, tmp_path):
        path = tmp_path / "t.jsonl"
        with TelemetryRecorder.open(path, command="sweep", workload="w") as rec:
            assert rec.n_records == 1
        records = read_telemetry(path)
        assert records[0]["kind"] == "run"
        assert records[0]["command"] == "sweep"
        assert records[0]["workload"] == "w"

    def test_replication_logger_binds_context(self, tmp_path):
        params, result = sample_result()
        path = tmp_path / "t.jsonl"
        with TelemetryRecorder.open(path, command="test") as rec:
            log = rec.replication_logger(
                workload="airsn", policy="prio", params=params, mu_extra=7
            )
            log(0, result, 0.5)
            log(1, result, None)
        records = read_telemetry(path)
        reps = [r for r in records if r["kind"] == "replication"]
        assert [r["rep"] for r in reps] == [0, 1]
        assert all(r["policy"] == "prio" for r in reps)
        assert reps[0]["mu_extra"] == 7
        assert reps[1]["elapsed_seconds"] is None

    def test_common_fields_do_not_collide_with_explicit(self, tmp_path):
        # A recorder whose common fields include "workload" must not make
        # replication() raise a duplicate-keyword error.
        params, result = sample_result()
        buffer = io.StringIO()
        from repro.obs.events import TelemetryWriter as W

        rec = TelemetryRecorder(W(buffer), common={"workload": "common", "tag": 1})
        rec.replication(
            workload="explicit", policy="fifo", rep=0, params=params, result=result
        )
        record = json.loads(buffer.getvalue())
        assert record["workload"] == "explicit"
        assert record["tag"] == 1

    def test_stage_records(self, tmp_path):
        path = tmp_path / "t.jsonl"
        with TelemetryRecorder.open(path, command="profile") as rec:
            rec.stage("combine", 0.25, workload="w")
        stage = read_telemetry(path)[1]
        assert stage["stage"] == "combine"
        assert stage["seconds"] == 0.25
        assert stage["workload"] == "w"
