"""Tests for the metrics registry: counters, gauges, timers, merging."""

import pytest

from repro.obs.metrics import Counter, Gauge, MetricsRegistry, Timer


class TestCounter:
    def test_starts_at_zero_and_increments(self):
        c = Counter("x")
        assert c.value == 0
        c.inc()
        c.inc(4)
        assert c.value == 5

    def test_rejects_negative(self):
        with pytest.raises(ValueError, match="only go up"):
            Counter("x").inc(-1)


class TestGauge:
    def test_tracks_value_and_peak(self):
        g = Gauge("pool")
        g.set(3)
        g.set(7)
        g.set(2)
        assert g.value == 2
        assert g.peak == 7

    def test_peak_of_all_negative_values(self):
        # The peak must be the largest *seen* value, not max(seen, 0).
        g = Gauge("depth")
        g.set(-5)
        g.set(-2)
        assert g.peak == -2


class TestTimer:
    def test_context_manager_accumulates(self):
        t = Timer("work")
        with t:
            pass
        with t:
            pass
        assert t.count == 2
        assert t.total >= 0.0
        assert t.mean == pytest.approx(t.total / 2)

    def test_add_folds_external_durations(self):
        t = Timer("phase")
        t.add(1.5)
        t.add(0.5)
        assert t.total == pytest.approx(2.0)
        assert t.last == pytest.approx(0.5)
        with pytest.raises(ValueError, match="non-negative"):
            t.add(-0.1)

    def test_mean_of_empty_timer(self):
        assert Timer("idle").mean == 0.0


class TestMetricsRegistry:
    def test_instruments_created_on_first_use(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")
        assert reg.gauge("b") is reg.gauge("b")
        assert reg.timer("c") is reg.timer("c")

    def test_snapshot_is_plain_and_sorted(self):
        import json

        reg = MetricsRegistry()
        reg.counter("z.count").inc(3)
        reg.counter("a.count").inc(1)
        reg.gauge("pool").set(9)
        reg.timer("phase").add(0.25)
        snap = reg.snapshot()
        json.dumps(snap)  # JSON-serializable by construction
        assert list(snap["counters"]) == ["a.count", "z.count"]
        assert snap["counters"]["z.count"] == 3
        assert snap["gauges"]["pool"] == {"value": 9, "peak": 9}
        assert snap["timers"]["phase"]["total"] == pytest.approx(0.25)
        assert snap["timers"]["phase"]["count"] == 1

    def test_merge_snapshot_adds_counts_and_maxes_peaks(self):
        parent = MetricsRegistry()
        parent.counter("events").inc(10)
        parent.gauge("heap").set(4)
        parent.timer("sim").add(1.0)

        worker = MetricsRegistry()
        worker.counter("events").inc(5)
        worker.counter("only.worker").inc(2)
        worker.gauge("heap").set(9)
        worker.timer("sim").add(0.5)

        parent.merge_snapshot(worker.snapshot())
        snap = parent.snapshot()
        assert snap["counters"]["events"] == 15
        assert snap["counters"]["only.worker"] == 2
        assert snap["gauges"]["heap"]["peak"] == 9
        assert snap["timers"]["sim"]["total"] == pytest.approx(1.5)
        assert snap["timers"]["sim"]["count"] == 2

    def test_merge_keeps_parent_peak_when_higher(self):
        parent = MetricsRegistry()
        parent.gauge("heap").set(20)
        worker = MetricsRegistry()
        worker.gauge("heap").set(3)
        parent.merge_snapshot(worker.snapshot())
        assert parent.gauge("heap").peak == 20
