"""Tests for the end-to-end workload profiler and the progress meter."""

import io

import pytest

from repro.obs.profile import PIPELINE_STAGES, profile_workload
from repro.obs.progress import ProgressMeter
from repro.obs.recorder import TelemetryRecorder


class TestProfileWorkload:
    def test_stage_breakdown_covers_the_whole_loop(self):
        report = profile_workload("airsn-small", runs=2, seed=0)
        names = [name for name, _ in report.stages]
        assert names == ["load", *PIPELINE_STAGES, "compile", "simulate"]
        assert all(seconds >= 0.0 for _, seconds in report.stages)
        assert report.total_seconds > 0.0
        assert report.n_jobs == 143

    def test_engine_counters_collected(self):
        report = profile_workload("airsn-small", runs=3, seed=1)
        assert report.engine_counters["engine.runs"] == 3
        assert report.engine_counters["engine.batches"] > 0
        assert report.engine_peaks["engine.peak_heap"] >= 1

    def test_render_mentions_every_stage(self):
        report = profile_workload("airsn-small", runs=1, seed=0)
        text = report.render()
        for name in ("load", "decompose", "simulate", "total"):
            assert name in text
        assert "engine counters" in text

    def test_rejects_zero_runs(self):
        with pytest.raises(ValueError, match="runs"):
            profile_workload("airsn-small", runs=0)

    def test_telemetry_gets_stage_and_replication_records(self, tmp_path):
        path = tmp_path / "profile.jsonl"
        with TelemetryRecorder.open(path, command="profile") as telemetry:
            profile_workload("airsn-small", runs=2, seed=0, telemetry=telemetry)
        from repro.obs.events import read_telemetry

        records = read_telemetry(path)
        kinds = [r["kind"] for r in records]
        assert kinds.count("replication") == 2
        stage_names = [r["stage"] for r in records if r["kind"] == "stage"]
        assert stage_names == ["load", *PIPELINE_STAGES, "compile", "simulate"]

    def test_parallel_profile_matches_serial_counters(self):
        serial = profile_workload("airsn-small", runs=4, seed=7, jobs=1)
        parallel = profile_workload("airsn-small", runs=4, seed=7, jobs=2)
        assert serial.engine_counters == parallel.engine_counters


class TestProgressMeter:
    def test_callback_updates_and_renders(self):
        stream = io.StringIO()
        ticks = iter([0.0, 2.0, 4.0, 4.0])
        meter = ProgressMeter(
            "sweep x", unit="cell", stream=stream, clock=lambda: next(ticks)
        )
        meter(1, 4)
        line = stream.getvalue()
        assert "sweep x: cell 1/4" in line
        assert "25.0%" in line
        assert "eta" in line

    def test_eta_linear_extrapolation(self):
        ticks = iter([0.0, 10.0, 10.0])
        meter = ProgressMeter("m", stream=None, clock=lambda: next(ticks))
        meter(2, 8)
        assert meter.eta() == pytest.approx(30.0)

    def test_silent_mode_still_tracks(self):
        meter = ProgressMeter("quiet", stream=None)
        meter(3, 3)
        assert meter.done == 3 and meter.total == 3
        assert meter.eta() is not None

    def test_finish_terminates_the_line(self):
        stream = io.StringIO()
        with ProgressMeter("m", stream=stream) as meter:
            meter(2, 2)
        assert stream.getvalue().endswith("\n")

    def test_no_eta_before_first_completion(self):
        meter = ProgressMeter("m", stream=None)
        assert meter.eta() is None
