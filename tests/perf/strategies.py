"""Hypothesis strategies shared by the perf equivalence suite."""

from __future__ import annotations

from hypothesis import strategies as st

from repro.dag.graph import Dag
from repro.sim.engine import SimParams


@st.composite
def dags(draw, max_n: int = 12, min_n: int = 0) -> Dag:
    """Random dags: pick n, then a subset of the upper-triangular arcs."""
    n = draw(st.integers(min_value=min_n, max_value=max_n))
    pairs = [(i, j) for i in range(n) for j in range(i + 1, n)]
    arcs = draw(
        st.lists(st.sampled_from(pairs), unique=True, max_size=len(pairs))
        if pairs
        else st.just([])
    )
    return Dag(n, arcs)


@st.composite
def sim_params(draw) -> SimParams:
    """Operating points spanning the regimes the sweep visits, including
    worker churn and rollover (the paths where kernel/reference divergence
    would hide)."""
    return SimParams(
        mu_bit=draw(st.sampled_from([0.01, 0.5, 1.0, 10.0])),
        mu_bs=draw(st.sampled_from([1.0, 2.0, 16.0, 128.0])),
        failure_prob=draw(st.sampled_from([0.0, 0.2])),
        rollover=draw(st.booleans()),
        batch_size_dist=draw(
            st.sampled_from(["geometric", "ceil-exponential"])
        ),
    )
