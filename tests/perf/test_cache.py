"""Unit tests for the two-tier schedule cache."""

from __future__ import annotations

import json
import pickle

import pytest

from repro.core.prio import prio_schedule
from repro.dag.graph import Dag
from repro.obs.metrics import MetricsRegistry
from repro.perf import ScheduleCache, cached_schedule, schedule_algorithms
from repro.sim.compile import CompiledDag


@pytest.fixture
def dag() -> Dag:
    return Dag(6, [(0, 2), (0, 3), (1, 3), (2, 4), (3, 4), (3, 5)])


def test_schedule_matches_direct_compute(dag):
    cache = ScheduleCache()
    assert cache.schedule(dag, "prio") == prio_schedule(dag).schedule
    from repro.core.fifo import fifo_schedule

    assert cache.schedule(dag, "fifo") == fifo_schedule(dag)
    assert cache.schedule(dag, "topological") == dag.topological_order()


def test_memory_hits_and_counters(dag):
    registry = MetricsRegistry()
    cache = ScheduleCache(metrics=registry)
    first = cache.schedule(dag, "prio")
    second = cache.schedule(dag, "prio")
    assert first == second
    assert (cache.hits, cache.misses, cache.disk_hits) == (1, 1, 0)
    counters = registry.snapshot()["counters"]
    assert counters["cache.hit"] == 1
    assert counters["cache.miss"] == 1


def test_returns_a_fresh_list_per_call(dag):
    cache = ScheduleCache()
    first = cache.schedule(dag, "prio")
    first.append(999)  # caller mutates its copy...
    second = cache.schedule(dag, "prio")
    assert 999 not in second  # ...the cached order stays pristine


def test_kwargs_are_part_of_the_key(dag):
    cache = ScheduleCache()
    default = cache.schedule(dag, "prio")
    topological = cache.schedule(dag, "prio", combine="topological")
    assert cache.misses == 2  # distinct variants never collide
    assert default == prio_schedule(dag).schedule
    assert topological == prio_schedule(dag, combine="topological").schedule


def test_lru_evicts_oldest(dag):
    cache = ScheduleCache(max_entries=2)
    cache.schedule(dag, "prio")
    cache.schedule(dag, "fifo")
    cache.schedule(dag, "topological")  # evicts prio
    assert len(cache) == 2
    cache.schedule(dag, "prio")
    assert cache.misses == 4  # prio recomputed after eviction


def test_lru_touch_on_hit(dag):
    cache = ScheduleCache(max_entries=2)
    cache.schedule(dag, "prio")
    cache.schedule(dag, "fifo")
    cache.schedule(dag, "prio")  # refresh prio: fifo is now oldest
    cache.schedule(dag, "topological")  # evicts fifo, not prio
    cache.schedule(dag, "prio")
    assert cache.hits == 2


def test_unknown_algorithm_raises(dag):
    cache = ScheduleCache()
    with pytest.raises(ValueError, match="unknown schedule algorithm"):
        cache.schedule(dag, "quantum")
    with pytest.raises(ValueError, match="unknown schedule algorithm"):
        cached_schedule(dag, "quantum")
    assert set(schedule_algorithms()) == {
        "prio", "fifo", "topological", "upward-rank", "dagps"
    }


def test_max_entries_validation():
    with pytest.raises(ValueError):
        ScheduleCache(max_entries=0)


def test_disk_roundtrip_across_instances(dag, tmp_path):
    writer = ScheduleCache(directory=tmp_path / "cache")
    order = writer.schedule(dag, "prio")
    entries = list((tmp_path / "cache").glob("schedule-*.json"))
    assert len(entries) == 1

    reader = ScheduleCache(directory=tmp_path / "cache")
    assert reader.schedule(dag, "prio") == order
    assert (reader.hits, reader.misses, reader.disk_hits) == (1, 0, 1)
    # Second read is served from memory, not disk.
    reader.schedule(dag, "prio")
    assert (reader.hits, reader.disk_hits) == (2, 1)


def test_damaged_disk_entry_is_a_miss(dag, tmp_path):
    cache = ScheduleCache(directory=tmp_path)
    order = cache.schedule(dag, "prio")
    [entry] = tmp_path.glob("schedule-*.json")

    for damage in (
        "not json{",
        json.dumps({"schema": 99}),
        json.dumps({"schema": 1, "fingerprint": "junk", "n": dag.n,
                    "schedule": order}),
        json.dumps({"schema": 1, "fingerprint": dag.fingerprint(),
                    "n": dag.n, "schedule": order[:-1]}),
        json.dumps([1, 2, 3]),
    ):
        entry.write_text(damage)
        fresh = ScheduleCache(directory=tmp_path)
        assert fresh.schedule(dag, "prio") == order  # recomputed, not trusted
        assert fresh.misses == 1 and fresh.disk_hits == 0
        # The damaged entry was rewritten with a good one.
        assert ScheduleCache(directory=tmp_path).schedule(dag, "prio") == order


def test_missing_directory_is_created_lazily(dag, tmp_path):
    target = tmp_path / "a" / "b" / "cache"
    cache = ScheduleCache(directory=target)
    assert not target.exists()
    cache.schedule(dag, "prio")
    assert target.is_dir()


def test_pickle_ships_configuration_only(dag, tmp_path):
    cache = ScheduleCache(max_entries=7, directory=tmp_path)
    cache.schedule(dag, "prio")
    clone = pickle.loads(pickle.dumps(cache))
    assert clone.max_entries == 7
    assert clone.directory == tmp_path
    assert len(clone) == 0 and clone.hits == clone.misses == 0
    # The clone re-reads the shared disk store instead of recomputing.
    clone.schedule(dag, "prio")
    assert clone.disk_hits == 1


def test_compiled_memo_returns_shared_instance(dag):
    cache = ScheduleCache()
    first = cache.compiled(dag)
    second = cache.compiled(dag)
    assert first is second
    assert isinstance(first, CompiledDag)
    # A compiled dag passed in is re-canonicalized against the memo.
    other = CompiledDag.from_dag(dag)
    assert cache.compiled(other) is first


def test_compiled_without_fingerprint_passes_through(dag):
    import numpy as np

    cache = ScheduleCache()
    raw = CompiledDag(
        n=1,
        indptr=np.zeros(2, dtype=np.int64),
        children=np.empty(0, dtype=np.int32),
        indegree=np.zeros(1, dtype=np.int32),
    )
    assert cache.compiled(raw) is raw
    assert len(cache) == 0


def test_cached_schedule_helper(dag):
    assert cached_schedule(dag) == prio_schedule(dag).schedule
    cache = ScheduleCache()
    assert cached_schedule(dag, "fifo", cache=cache) == cached_schedule(
        dag, "fifo"
    )
    assert cache.misses == 1
