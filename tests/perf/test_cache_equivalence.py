"""End-to-end equivalence: cached runs are byte-identical to uncached.

The cache must be pure reuse — same schedules, same compiled dags, same
random streams, and therefore the very same rendered output — whether the
schedule came from the compute path, the in-memory LRU, or the on-disk
store, and whether the replications ran serial or parallel.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.league import Entrant, league
from repro.analysis.report import render_sweep
from repro.analysis.sweep import SweepConfig, ratio_sweep
from repro.core.prio import prio_schedule
from repro.perf import ScheduleCache, cached_schedule
from repro.sim.engine import SimParams
from repro.sim.replication import policy_factory, run_replications
from repro.workloads.registry import get_workload

CONFIG = SweepConfig(mu_bits=(1.0,), mu_bss=(2.0, 16.0), p=4, q=2)


@pytest.fixture(scope="module")
def dag():
    return get_workload("airsn-small")


def test_cached_sweep_renders_byte_identical(dag, tmp_path):
    uncached = ratio_sweep(
        dag, prio_schedule(dag).schedule, CONFIG, "airsn-small"
    )
    cache = ScheduleCache(directory=tmp_path / "store")
    cached = ratio_sweep(
        dag,
        cached_schedule(dag, "prio", cache=cache),
        CONFIG,
        "airsn-small",
        cache=cache,
    )
    assert render_sweep(cached) == render_sweep(uncached)

    # A second process-like consumer reading the disk store back.
    warm_cache = ScheduleCache(directory=tmp_path / "store")
    warm = ratio_sweep(
        dag,
        cached_schedule(dag, "prio", cache=warm_cache),
        CONFIG,
        "airsn-small",
        cache=warm_cache,
    )
    assert warm_cache.disk_hits == 1
    assert render_sweep(warm) == render_sweep(uncached)


def test_cached_parallel_sweep_matches_uncached_serial(dag):
    uncached = ratio_sweep(
        dag, prio_schedule(dag).schedule, CONFIG, "airsn-small"
    )
    cache = ScheduleCache()
    parallel = ratio_sweep(
        dag,
        cached_schedule(dag, "prio", cache=cache),
        CONFIG,
        "airsn-small",
        jobs=2,
        cache=cache,
    )
    assert render_sweep(parallel) == render_sweep(uncached)


def test_cached_replications_are_bit_identical(dag):
    params = SimParams(mu_bit=1.0, mu_bs=8.0)
    factory = policy_factory("oblivious", order=prio_schedule(dag).schedule)
    plain = run_replications(dag, factory, params, 6, seed=42)
    cache = ScheduleCache()
    via_cache = run_replications(dag, factory, params, 6, seed=42, cache=cache)
    assert np.array_equal(plain.execution_time, via_cache.execution_time)
    assert np.array_equal(plain.utilization, via_cache.utilization)
    assert np.array_equal(
        plain.stalling_probability, via_cache.stalling_probability
    )
    # The compiled dag was memoized (one miss, then a hit on reuse).
    again = run_replications(dag, factory, params, 6, seed=42, cache=cache)
    assert cache.hits >= 1
    assert np.array_equal(plain.execution_time, again.execution_time)


def test_cached_league_matches_uncached(dag):
    params = SimParams(mu_bit=1.0, mu_bs=8.0)
    cache = ScheduleCache()
    entrants = [
        Entrant.from_schedule("prio", cached_schedule(dag, "prio", cache=cache)),
        Entrant("fifo", "fifo"),
    ]
    baseline_rows = league(dag, entrants, params, n_runs=6, seed=3)
    cached_rows = league(dag, entrants, params, n_runs=6, seed=3, cache=cache)
    assert cached_rows == baseline_rows
