"""Properties of the canonical dag fingerprint.

The fingerprint keys the schedule cache, so its contract is exactly what
makes caching sound: same node ids + same arcs -> same digest (whatever
the string labels say), different adjacency -> different digest.
"""

from __future__ import annotations

import pickle

from hypothesis import given
from hypothesis import strategies as st

from repro.dag.graph import Dag
from repro.sim.compile import CompiledDag

from .strategies import dags


@given(dags())
def test_fingerprint_is_deterministic_across_copies(dag):
    copy = Dag(dag.n, dag.arcs(), dag.labels)
    assert dag.fingerprint() == copy.fingerprint()
    # Memoized: repeated calls return the identical string.
    assert dag.fingerprint() is dag.fingerprint()


@given(dags(min_n=1))
def test_fingerprint_is_label_invariant(dag):
    renamed = dag.relabelled([f"job-{u:04d}" for u in range(dag.n)])
    assert renamed.labels != dag.labels or dag.n == 0
    assert renamed.fingerprint() == dag.fingerprint()


@given(dags(min_n=1), st.data())
def test_fingerprint_distinguishes_different_arc_sets(dag, data):
    """Adding or removing any single arc changes the digest."""
    arcs = list(dag.arcs())
    missing = [
        (i, j)
        for i in range(dag.n)
        for j in range(i + 1, dag.n)
        if not dag.has_arc(i, j)
    ]
    if arcs and data.draw(st.booleans(), label="drop an arc") or not missing:
        if not arcs:
            return
        victim = data.draw(st.sampled_from(arcs), label="arc to drop")
        other = dag.without_arcs([victim])
    else:
        extra = data.draw(st.sampled_from(missing), label="arc to add")
        other = Dag(dag.n, arcs + [extra])
    assert other.fingerprint() != dag.fingerprint()


def test_fingerprint_distinguishes_node_count():
    assert Dag(2, []).fingerprint() != Dag(3, []).fingerprint()
    assert Dag(0, []).fingerprint() != Dag(1, []).fingerprint()


def test_fingerprint_is_arc_order_independent():
    a = Dag(4, [(0, 1), (0, 2), (1, 3)])
    b = Dag(4, [(1, 3), (0, 2), (0, 1)])
    assert a.fingerprint() == b.fingerprint()


@given(dags())
def test_compiled_dag_carries_and_pickles_the_fingerprint(dag):
    compiled = CompiledDag.from_dag(dag)
    assert compiled.fingerprint == dag.fingerprint()
    clone = pickle.loads(pickle.dumps(compiled))
    assert clone.fingerprint == compiled.fingerprint
    assert clone.n == compiled.n
    assert clone.child_lists() == compiled.child_lists()
    assert clone.initial_frontier() == compiled.initial_frontier()


@given(dags())
def test_compiled_dag_memoizes_adjacency_views(dag):
    compiled = CompiledDag.from_dag(dag)
    assert compiled.child_lists() is compiled.child_lists()
    assert compiled.initial_frontier() is compiled.initial_frontier()
    # The memo never leaks into the pickled payload.
    compiled.child_lists()
    assert b"_child_lists" not in pickle.dumps(compiled)
