"""Fingerprint / schedule-cache coverage for *imported* dags.

The schedule cache is content-addressed by ``Dag.fingerprint()``; these
tests pin the properties the importer must uphold for imported workloads
to be first-class cache citizens: disk and in-memory imports of the same
tree share a fingerprint (and therefore cache entries), an instrumented
flat file still maps to the same entry, and structurally different trees
never collide.
"""

from __future__ import annotations

import pytest

from repro.core.prio import prio_schedule
from repro.dagman.importer import import_dagman_file, import_dagman_tree
from repro.perf import ScheduleCache, cached_schedule
from repro.workloads.corpus import (
    CAX_ROOT,
    cax_tree,
    nipype_tree,
    NIPYPE_ROOT,
    write_tree,
)


@pytest.fixture
def tree() -> dict[str, str]:
    return cax_tree(runs=2, chunks=2)


def test_disk_and_memory_imports_share_cache_entries(tree, tmp_path):
    root = write_tree(tree, tmp_path)
    cache = ScheduleCache()
    order = cache.schedule(import_dagman_file(root).dag, "prio")
    again = cache.schedule(import_dagman_tree(tree, CAX_ROOT).dag, "prio")
    assert order == again
    assert (cache.hits, cache.misses) == (1, 1)


def test_instrumented_render_maps_to_same_entry(tree):
    from repro.core.tool import prioritize_dagman

    w = import_dagman_tree(tree, CAX_ROOT)
    cache = ScheduleCache()
    cache.schedule(w.dag, "prio")
    prioritize_dagman(w.flat)  # instrumentation rewrites VARS only
    again = import_dagman_tree({"flat.dag": w.render()}, "flat.dag")
    cache.schedule(again.dag, "prio")
    assert (cache.hits, cache.misses) == (1, 1)


def test_different_shapes_never_collide(tree):
    a = import_dagman_tree(tree, CAX_ROOT)
    b = import_dagman_tree(cax_tree(runs=2, chunks=3), CAX_ROOT)
    c = import_dagman_tree(nipype_tree(2, 2), NIPYPE_ROOT)
    assert len({a.fingerprint(), b.fingerprint(), c.fingerprint()}) == 3


def test_subdag_mode_changes_fingerprint(tree):
    expanded = import_dagman_tree(tree, CAX_ROOT)
    opaque = import_dagman_tree(tree, CAX_ROOT, expand_subdags=False)
    assert expanded.fingerprint() != opaque.fingerprint()


def test_cached_schedule_on_imported_dag_is_correct(tree):
    dag = import_dagman_tree(tree, CAX_ROOT).dag
    assert cached_schedule(dag, "prio", cache=None) == (
        prio_schedule(dag).schedule
    )
    cache = ScheduleCache()
    assert cached_schedule(dag, "prio", cache=cache) == (
        prio_schedule(dag).schedule
    )
    assert cached_schedule(dag, "prio", cache=cache) == (
        prio_schedule(dag).schedule
    )
    assert cache.hits == 1


def test_disk_cache_round_trip(tree, tmp_path):
    dag = import_dagman_tree(tree, CAX_ROOT).dag
    first = ScheduleCache(directory=tmp_path / "cache")
    order = first.schedule(dag, "prio")
    # A fresh process (new in-memory tier) hits the disk tier.
    second = ScheduleCache(directory=tmp_path / "cache")
    assert second.schedule(dag, "prio") == order
    assert second.disk_hits == 1
