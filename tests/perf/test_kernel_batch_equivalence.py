"""Batched-vs-serial equivalence: ``simulate_batch`` against the engines.

The batched kernel's contract is the scalar kernel's, replication by
replication: for every generator in the batch, the :class:`SimResult` and
the generator's end state must be bit-identical to a serial
``simulate(dag, policy, params, rng)`` with that generator — across both
supported policies, worker churn, rollover, ``failure_prob > 0``,
per-job runtime scaling, both batch-size distributions, slab boundaries
and the paper workloads.  Any divergence is a bug in
:mod:`repro.perf.kernel_batch`.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.prio import prio_schedule
from repro.dag.graph import Dag
from repro.perf import batch_supported, simulate_batch
from repro.perf import kernel_batch
from repro.sim.compile import CompiledDag
from repro.sim.engine import SimParams, make_policy, simulate
from repro.sim.policies import policy_spec
from repro.sim.replication import policy_factory, run_replications
from repro.workloads.registry import get_workload

from .strategies import dags, sim_params

WORKLOADS = ("airsn-small", "inspiral-small", "montage-small", "sdss-small")

#: Registered kinds that reduce to the oblivious dispatch class.
STATIC_KINDS = ("prio", "upward-rank", "dagps")


def _order_for(dag, kind):
    if kind == "oblivious":
        return prio_schedule(dag).schedule
    spec = policy_spec(kind)
    return spec.static_order(dag) if spec.static_order is not None else None


def _assert_batch_matches_serial(dag, kind, params, count, seed, scale=None):
    """Batched results and generator end states == serial, rep by rep."""
    compiled = CompiledDag.from_dag(dag)
    order = _order_for(dag, kind)
    seqs = np.random.SeedSequence(seed).spawn(count)
    batch_rngs = [np.random.default_rng(s) for s in seqs]
    batched = simulate_batch(
        compiled, kind, params, batch_rngs, order=order, runtime_scale=scale
    )
    assert len(batched) == count
    for i, seq in enumerate(seqs):
        rng = np.random.default_rng(seq)
        serial = simulate(
            compiled,
            make_policy(kind, order=order),
            params,
            rng,
            runtime_scale=scale,
        )
        assert batched[i] == serial  # plain dataclass: exact floats
        assert (
            batch_rngs[i].bit_generator.state == rng.bit_generator.state
        ), f"generator end state diverged for replication {i}"


@settings(deadline=None, max_examples=40)
@given(
    dags(),
    sim_params(),
    st.integers(min_value=0, max_value=2**32 - 1),
    st.sampled_from(["fifo", "oblivious"]),
    st.booleans(),
)
def test_batch_matches_serial_on_random_dags(dag, params, seed, kind, scaled):
    scale = None
    if scaled and dag.n:
        scale = np.random.default_rng(seed ^ 0x5A5A).uniform(0.5, 2.0, dag.n)
    _assert_batch_matches_serial(dag, kind, params, 4, seed, scale=scale)


@settings(deadline=None, max_examples=25)
@given(
    dags(),
    sim_params(),
    st.integers(min_value=0, max_value=2**32 - 1),
    st.sampled_from(STATIC_KINDS),
)
def test_batch_matches_serial_for_registered_static_kinds(
    dag, params, seed, kind
):
    """Registered static-permutation kinds reduce to the oblivious
    dispatch class bit-identically, replication by replication."""
    _assert_batch_matches_serial(dag, kind, params, 3, seed)


@pytest.mark.parametrize("workload", WORKLOADS)
@pytest.mark.parametrize(
    "kind", ["fifo", "oblivious", "upward-rank", "dagps"]
)
def test_batch_matches_serial_on_paper_workloads(workload, kind):
    dag = get_workload(workload)
    params = SimParams(mu_bit=1.0, mu_bs=16.0)
    _assert_batch_matches_serial(dag, kind, params, 3, seed=20060427)


@pytest.mark.parametrize(
    "params",
    [
        SimParams(mu_bit=1.0, mu_bs=8.0, failure_prob=0.3),
        SimParams(mu_bit=1.0, mu_bs=8.0, rollover=True),
        SimParams(mu_bit=0.1, mu_bs=4.0, failure_prob=0.2, rollover=True),
    ],
    ids=["churn", "rollover", "churn+rollover"],
)
def test_batch_falls_back_identically_outside_batch_sync(params):
    """Churn/rollover take the per-replication fallback — still exact."""
    dag = get_workload("airsn-small")
    assert not batch_supported("fifo", params)
    assert not batch_supported("upward-rank", params)
    for kind in ("fifo", "oblivious", "upward-rank", "dagps"):
        _assert_batch_matches_serial(dag, kind, params, 3, seed=7)


def test_batch_matches_across_slab_boundaries(monkeypatch):
    """A batch split into multiple state slabs is still exact per rep."""
    dag = Dag(40, [(i, i + 1) for i in range(0, 38, 2)])
    monkeypatch.setattr(kernel_batch, "_STATE_BUDGET", 120)  # slab = 3 reps
    params = SimParams(mu_bit=0.5, mu_bs=4.0)
    for kind in ("fifo", "oblivious"):
        _assert_batch_matches_serial(dag, kind, params, 10, seed=55)


def test_batch_chain_crosses_arrival_chunks():
    """A long serial chain forces mid-run arrival-chunk refills."""
    dag = Dag(48, [(i, i + 1) for i in range(47)])
    params = SimParams(mu_bit=0.01, mu_bs=1.0)
    for kind in ("fifo", "oblivious"):
        _assert_batch_matches_serial(dag, kind, params, 3, seed=99)


def test_batch_single_request_larger_than_sampler_chunk():
    """One huge batch draws a runtime block wider than the chunk size."""
    dag = Dag(4200, [])
    params = SimParams(mu_bit=1.0, mu_bs=8192.0)
    for kind in ("fifo", "oblivious"):
        _assert_batch_matches_serial(dag, kind, params, 3, seed=123)


def test_batch_zero_runtime_spread_breaks_ties_like_the_heap():
    """std=0 makes finishes collide exactly; FIFO's in-window pop order
    must still match the reference heap's (finish, job) tiebreak."""
    dag = Dag(30, [(i, j) for i in range(6) for j in range(6, 30, 4)])
    params = SimParams(mu_bit=2.0, mu_bs=4.0, runtime_std=0.0)
    for kind in ("fifo", "oblivious"):
        _assert_batch_matches_serial(dag, kind, params, 6, seed=321)


def test_batch_empty_dag_returns_empty_results():
    results = simulate_batch(
        Dag(0, []), "fifo", SimParams(mu_bit=1.0, mu_bs=4.0),
        [np.random.default_rng(i) for i in range(3)],
    )
    assert len(results) == 3
    assert all(
        r.n_jobs == 0 and r.execution_time == 0.0 for r in results
    )


def test_batch_rejects_unsupported_policy_kind():
    with pytest.raises(ValueError, match="policy kind"):
        simulate_batch(
            Dag(2, []), "random", SimParams(mu_bit=1.0, mu_bs=4.0),
            [np.random.default_rng(0)],
        )


def test_batch_validates_runtime_scale():
    dag = Dag(3, [])
    with pytest.raises(ValueError, match="one entry per job"):
        simulate_batch(
            dag, "fifo", SimParams(mu_bit=1.0, mu_bs=4.0),
            [np.random.default_rng(0)], runtime_scale=np.ones(2),
        )
    with pytest.raises(ValueError, match="positive"):
        simulate_batch(
            dag, "fifo", SimParams(mu_bit=1.0, mu_bs=4.0),
            [np.random.default_rng(0)], runtime_scale=np.zeros(3),
        )


def test_batch_supported_predicate():
    ok = SimParams(mu_bit=1.0, mu_bs=4.0)
    assert batch_supported("fifo", ok)
    assert batch_supported("oblivious", ok)
    for kind in STATIC_KINDS:
        assert batch_supported(kind, ok), kind
    assert not batch_supported("random", ok)
    assert not batch_supported("prio-live", ok)
    assert not batch_supported("not-a-policy", ok)
    assert not batch_supported(
        "fifo", SimParams(mu_bit=1.0, mu_bs=4.0, failure_prob=0.1)
    )
    assert not batch_supported(
        "fifo", SimParams(mu_bit=1.0, mu_bs=4.0, rollover=True)
    )
    assert not batch_supported(
        "fifo", SimParams(mu_bit=1.0, mu_bs=4.0, straggler_prob=0.1)
    )


def test_batch_refuses_straggler_injection():
    dag = get_workload("montage-small")
    params = SimParams(mu_bit=1.0, mu_bs=4.0, straggler_prob=0.1)
    with pytest.raises(ValueError, match="straggler"):
        simulate_batch(dag, "fifo", params, [np.random.default_rng(0)])


def test_run_replications_dispatches_to_batch(monkeypatch):
    """The serial hot path hands whole batches to the batched kernel and
    the metrics are bit-identical to the per-replication loop."""
    dag = get_workload("montage-small")
    params = SimParams(mu_bit=1.0, mu_bs=8.0)
    calls = []
    real = kernel_batch.simulate_batch

    def spy(*args, **kwargs):
        calls.append(1)
        return real(*args, **kwargs)

    monkeypatch.setattr(kernel_batch, "simulate_batch", spy)
    batched = run_replications(
        dag, policy_factory("fifo"), params, count=6, seed=11
    )
    assert calls, "batched kernel was never dispatched"

    monkeypatch.setenv("REPRO_NO_KERNEL", "1")
    serial = run_replications(
        dag, policy_factory("fifo"), params, count=6, seed=11
    )
    assert np.array_equal(batched.execution_time, serial.execution_time)
    assert np.array_equal(
        batched.stalling_probability, serial.stalling_probability
    )
    assert np.array_equal(batched.utilization, serial.utilization)


@pytest.mark.parametrize("kind", ["upward-rank", "dagps"])
def test_run_replications_dispatches_new_kinds_to_batch(monkeypatch, kind):
    """New static kinds ride the batched kernel through the replication
    layer, bit-identical to the forced-reference path."""
    dag = get_workload("montage-small")
    params = SimParams(mu_bit=1.0, mu_bs=8.0)
    calls = []
    real = kernel_batch.simulate_batch

    def spy(*args, **kwargs):
        calls.append(1)
        return real(*args, **kwargs)

    monkeypatch.setattr(kernel_batch, "simulate_batch", spy)
    batched = run_replications(
        dag, policy_factory(kind, dag=dag), params, count=5, seed=13
    )
    assert calls, "batched kernel was never dispatched"

    monkeypatch.setenv("REPRO_NO_KERNEL", "1")
    serial = run_replications(
        dag, policy_factory(kind, dag=dag), params, count=5, seed=13
    )
    assert np.array_equal(batched.execution_time, serial.execution_time)
    assert np.array_equal(batched.utilization, serial.utilization)


def test_run_replications_falls_back_for_dynamic_kinds(monkeypatch):
    """Kinds with no kernel dispatch class (random, prio-live) take the
    documented per-replication reference fallback — no batch dispatch."""
    dag = get_workload("montage-small")
    params = SimParams(mu_bit=1.0, mu_bs=8.0)
    calls = []

    def spy(*args, **kwargs):  # pragma: no cover - must never run
        calls.append(1)
        raise AssertionError("dynamic kind dispatched to the batch kernel")

    monkeypatch.setattr(kernel_batch, "simulate_batch", spy)
    for build in (policy_factory("random"), policy_factory("prio-live", dag=dag)):
        assert build.batch_kind is None
        run_replications(dag, build, params, count=2, seed=5)
    assert not calls
