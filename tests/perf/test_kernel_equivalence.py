"""Cross-engine equivalence: the fast kernel vs the reference event loop.

The kernel's contract is bit-identity, not approximation: for any
supported policy, seed and operating point, ``simulate(..., kernel=True)``
must return the same :class:`SimResult` and record the same
:class:`ExecutionTrace` as ``kernel=False`` — including worker churn,
rollover and per-job runtime scaling.  These tests hold that property over
property-based random dags and the paper's workloads.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.prio import prio_schedule
from repro.obs.metrics import MetricsRegistry
from repro.perf import kernel_supported, simulate_fast
from repro.sim.compile import CompiledDag
from repro.sim.engine import SimParams, make_policy, simulate
from repro.sim.policies import (
    DagpsPolicy,
    FifoPolicy,
    ObliviousPolicy,
    RandomPolicy,
    UpwardRankPolicy,
    policy_spec,
)
from repro.sim.trace import ExecutionTrace
from repro.workloads.registry import get_workload

from .strategies import dags, sim_params

WORKLOADS = ("airsn-small", "inspiral-small", "montage-small", "sdss-small")

TRACE_FIELDS = ("eligible", "running", "executed", "wasted", "waiting")


def _run_both(dag, policy_kind, order, params, seed, runtime_scale=None):
    """One simulation through each engine; returns (results, traces)."""
    results, traces = [], []
    for kernel in (False, True):
        rng = np.random.default_rng(seed)
        policy = make_policy(policy_kind, order=order, rng=rng)
        trace = ExecutionTrace()
        results.append(
            simulate(
                dag, policy, params, rng,
                kernel=kernel, trace=trace, runtime_scale=runtime_scale,
            )
        )
        traces.append(trace)
    return results, traces


def _assert_identical(results, traces):
    reference, fast = results
    assert fast == reference  # SimResult is a plain dataclass: exact floats
    t_ref, t_fast = traces
    assert np.array_equal(t_ref.times, t_fast.times)
    for field in TRACE_FIELDS:
        assert np.array_equal(t_ref.series(field), t_fast.series(field))


@given(dags(), sim_params(), st.integers(min_value=0, max_value=2**32 - 1),
       st.booleans())
def test_kernel_matches_reference_on_random_dags(dag, params, seed, scaled):
    order = prio_schedule(dag).schedule
    scale = None
    if scaled and dag.n:
        scale = np.random.default_rng(seed ^ 0xA5A5).uniform(0.5, 2.0, dag.n)
    for kind, policy_order in (("fifo", None), ("oblivious", order)):
        results, traces = _run_both(
            dag, kind, policy_order, params, seed, runtime_scale=scale
        )
        _assert_identical(results, traces)


@given(dags(), sim_params(), st.integers(min_value=0, max_value=2**32 - 1))
def test_kernel_matches_reference_for_registered_static_kinds(
    dag, params, seed
):
    """The new static-permutation policies hold the same bit-identity
    contract as ``oblivious`` — results, traces, and generator end state."""
    for kind in ("upward-rank", "dagps"):
        order = policy_spec(kind).static_order(dag)
        rngs = [np.random.default_rng(seed) for _ in range(2)]
        results, traces = [], []
        for kernel, rng in zip((False, True), rngs):
            policy = make_policy(kind, order=order)
            trace = ExecutionTrace()
            results.append(
                simulate(dag, policy, params, rng, kernel=kernel, trace=trace)
            )
            traces.append(trace)
        _assert_identical(results, traces)
        assert rngs[0].bit_generator.state == rngs[1].bit_generator.state


@pytest.mark.parametrize("workload", WORKLOADS)
@pytest.mark.parametrize(
    "kind", ["fifo", "oblivious", "upward-rank", "dagps"]
)
def test_kernel_matches_reference_on_paper_workloads(workload, kind):
    dag = get_workload(workload)
    if kind == "oblivious":
        order = prio_schedule(dag).schedule
    elif policy_spec(kind).static_order is not None:
        order = policy_spec(kind).static_order(dag)
    else:
        order = None
    params = SimParams(mu_bit=1.0, mu_bs=16.0)
    results, traces = _run_both(dag, kind, order, params, seed=20060427)
    _assert_identical(results, traces)


@pytest.mark.parametrize(
    "params",
    [
        SimParams(mu_bit=1.0, mu_bs=8.0, failure_prob=0.3),
        SimParams(mu_bit=1.0, mu_bs=8.0, rollover=True),
        SimParams(mu_bit=0.1, mu_bs=4.0, failure_prob=0.2, rollover=True),
    ],
    ids=["churn", "rollover", "churn+rollover"],
)
def test_kernel_matches_reference_under_churn_and_rollover(params):
    dag = get_workload("airsn-small")
    order = prio_schedule(dag).schedule
    for kind, policy_order in (("fifo", None), ("oblivious", order)):
        results, traces = _run_both(dag, kind, policy_order, params, seed=7)
        _assert_identical(results, traces)


def test_kernel_emits_the_same_engine_counters(diamond):
    params = SimParams(mu_bit=1.0, mu_bs=4.0)
    snapshots = []
    for kernel in (False, True):
        registry = MetricsRegistry()
        rng = np.random.default_rng(3)
        simulate(
            diamond, make_policy("fifo"), params, rng,
            kernel=kernel, metrics=registry,
        )
        snapshots.append(registry.snapshot())
    reference, fast = snapshots
    for name, value in reference["counters"].items():
        assert fast["counters"][name] == value, name
    assert reference["gauges"] == fast["gauges"]
    assert fast["counters"]["engine.kernel_runs"] == 1
    assert "engine.kernel_runs" not in reference["counters"]
    assert {"kernel.setup", "kernel.loop"} <= set(fast["timers"])


def test_kernel_supported_is_exact_type(rng):
    assert kernel_supported(FifoPolicy())
    assert kernel_supported(ObliviousPolicy([0, 1]))
    assert kernel_supported(UpwardRankPolicy(order=[0, 1]))
    assert kernel_supported(DagpsPolicy(order=[0, 1]))
    assert not kernel_supported(RandomPolicy(rng))

    class CustomFifo(FifoPolicy):
        pass

    class CustomRank(UpwardRankPolicy):
        pass

    assert not kernel_supported(CustomFifo())
    assert not kernel_supported(CustomRank(order=[0, 1]))


def test_kernel_true_insists(diamond, rng):
    params = SimParams(mu_bit=1.0, mu_bs=4.0)
    with pytest.raises(ValueError, match="fast kernel"):
        simulate(
            diamond, make_policy("random", rng=rng), params, rng, kernel=True
        )


def test_simulate_fast_rejects_unsupported_and_prefilled(diamond, rng):
    compiled = CompiledDag.from_dag(diamond)
    params = SimParams(mu_bit=1.0, mu_bs=4.0)
    with pytest.raises(TypeError):
        simulate_fast(compiled, RandomPolicy(rng), params, rng)
    policy = FifoPolicy()
    policy.push(0)
    with pytest.raises(ValueError, match="freshly constructed"):
        simulate_fast(compiled, policy, params, rng)


def test_env_off_switch_forces_reference(diamond, monkeypatch):
    params = SimParams(mu_bit=1.0, mu_bs=4.0)
    monkeypatch.setenv("REPRO_NO_KERNEL", "1")
    registry = MetricsRegistry()
    result = simulate(
        diamond, make_policy("fifo"), params,
        np.random.default_rng(5), metrics=registry,
    )
    assert "engine.kernel_runs" not in registry.snapshot()["counters"]
    monkeypatch.delenv("REPRO_NO_KERNEL")
    registry = MetricsRegistry()
    assert result == simulate(
        diamond, make_policy("fifo"), params,
        np.random.default_rng(5), metrics=registry,
    )
    assert registry.snapshot()["counters"]["engine.kernel_runs"] == 1


def test_empty_dag_short_circuits():
    from repro.dag.graph import Dag

    empty = Dag(0, [])
    result = simulate(
        empty, make_policy("fifo"), SimParams(mu_bit=1.0, mu_bs=4.0),
        np.random.default_rng(0), kernel=True,
    )
    assert result.n_jobs == 0 and result.execution_time == 0.0


@pytest.mark.parametrize("kernel", [False, True], ids=["engine", "kernel"])
def test_empty_dag_epilogue_matches_engine(kernel):
    """Regression: the zero-job early return used to skip the t=0 trace
    snapshot and the run counters on one path, so an empty dag could make
    the engine and the kernel diverge and vanish from telemetry."""
    from repro.dag.graph import Dag

    trace = ExecutionTrace()
    registry = MetricsRegistry()
    result = simulate(
        Dag(0, []), make_policy("fifo"), SimParams(mu_bit=1.0, mu_bs=4.0),
        np.random.default_rng(0), kernel=kernel, trace=trace,
        metrics=registry,
    )
    assert result.n_jobs == 0 and result.execution_time == 0.0
    # The documented pre-assignment t=0 snapshot is still recorded.
    assert len(trace) == 1
    assert trace.times[0] == 0.0
    assert trace.eligible[0] == 0 and trace.running[0] == 0
    counters = registry.snapshot()["counters"]
    assert counters["engine.runs"] == 1
    assert counters.get("engine.kernel_runs", 0) == (1 if kernel else 0)
