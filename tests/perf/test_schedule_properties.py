"""Property tests: every scheduling policy emits a lawful order, and the
transitive reduction the pipeline starts from preserves reachability."""

from __future__ import annotations

from hypothesis import given
from hypothesis import strategies as st

from repro.core.fifo import fifo_schedule
from repro.core.prio import prio_schedule
from repro.dag.transitive import remove_shortcuts, transitive_closure_sets
from repro.dag.validate import is_valid_schedule
from repro.perf import ScheduleCache, schedule_algorithms

from .strategies import dags


@given(dags(), st.sampled_from(sorted(schedule_algorithms())))
def test_every_algorithm_emits_a_permutation_in_topological_order(dag, algorithm):
    order = ScheduleCache().schedule(dag, algorithm)
    assert sorted(order) == list(range(dag.n))  # a permutation of the jobs
    # DAGPS is a total *priority* order, not a topological one: the
    # simulator's eligibility gating enforces precedence at run time
    # (pinned in tests/sim/test_policy_invariants.py).  Every other
    # algorithm's order must be directly executable.
    if algorithm != "dagps":
        assert is_valid_schedule(dag, order)  # in dependency order


@given(dags())
def test_prio_variants_are_valid_schedules(dag):
    for kwargs in ({}, {"combine": "topological"}):
        order = prio_schedule(dag, **kwargs).schedule
        assert sorted(order) == list(range(dag.n))
        assert is_valid_schedule(dag, order)


@given(dags())
def test_fifo_is_a_valid_schedule(dag):
    order = fifo_schedule(dag)
    assert sorted(order) == list(range(dag.n))
    assert is_valid_schedule(dag, order)


@given(dags())
def test_transitive_reduction_preserves_reachability(dag):
    reduced, removed = remove_shortcuts(dag)
    assert reduced.n == dag.n
    assert transitive_closure_sets(reduced) == transitive_closure_sets(dag)
    # Only arcs of the original dag were removed, and none remain.
    original_arcs = set(dag.arcs())
    assert set(removed) <= original_arcs
    assert set(reduced.arcs()) == original_arcs - set(removed)


@given(dags())
def test_transitive_reduction_is_idempotent(dag):
    reduced, _ = remove_shortcuts(dag)
    again, removed = remove_shortcuts(reduced)
    assert removed == []
    assert set(again.arcs()) == set(reduced.arcs())
