"""Tests for fingerprinted, atomically-written checkpoints."""

import json

import pytest

from repro.robust import (
    CHECKPOINT_SCHEMA,
    Checkpoint,
    CheckpointError,
    FingerprintMismatch,
    corrupt_checkpoint,
    fingerprint,
)


class TestFingerprint:
    def test_stable(self):
        assert fingerprint({"a": 1}) == fingerprint({"a": 1})

    def test_key_order_irrelevant(self):
        assert fingerprint({"a": 1, "b": 2}) == fingerprint({"b": 2, "a": 1})

    def test_payload_sensitive(self):
        assert fingerprint({"seed": 1}) != fingerprint({"seed": 2})

    def test_folds_in_schema_versions(self, monkeypatch):
        before = fingerprint({"a": 1})
        import repro.robust.checkpoint as mod

        monkeypatch.setattr(mod, "CODE_SCHEMA_VERSION", 999)
        assert fingerprint({"a": 1}) != before


class TestCheckpointLifecycle:
    def test_fresh_checkpoint_written_immediately(self, tmp_path):
        path = tmp_path / "ck.jsonl"
        ck = Checkpoint.open(path, fingerprint({"x": 1}), meta={"driver": "t"})
        assert path.exists()
        assert ck.n_done == 0
        header = json.loads(path.read_text().splitlines()[0])
        assert header["kind"] == "header"
        assert header["schema"] == CHECKPOINT_SCHEMA
        assert header["meta"] == {"driver": "t"}

    def test_record_and_get(self, tmp_path):
        ck = Checkpoint.open(tmp_path / "ck.jsonl", fingerprint({}))
        assert ck.get("cell/0") is None
        ck.record("cell/0", {"value": 1.5})
        assert ck.get("cell/0") == {"value": 1.5}
        assert ck.n_done == 1
        assert ck.done_keys == ["cell/0"]

    def test_reopen_restores_records(self, tmp_path):
        path = tmp_path / "ck.jsonl"
        fp = fingerprint({"cfg": 3})
        ck = Checkpoint.open(path, fp)
        ck.record("a", [1, 2])
        ck.record("b", {"nested": True})
        again = Checkpoint.open(path, fp)
        assert again.get("a") == [1, 2]
        assert again.get("b") == {"nested": True}
        assert again.n_done == 2

    def test_float_payloads_roundtrip_exactly(self, tmp_path):
        path = tmp_path / "ck.jsonl"
        fp = fingerprint({})
        values = [0.1 + 0.2, 1e-300, 136.3032690499477, 3.141592653589793]
        Checkpoint.open(path, fp).record("vals", values)
        assert Checkpoint.open(path, fp).get("vals") == values

    def test_fingerprint_mismatch_hard_errors(self, tmp_path):
        path = tmp_path / "ck.jsonl"
        Checkpoint.open(path, fingerprint({"seed": 1})).record("k", 0)
        with pytest.raises(FingerprintMismatch):
            Checkpoint.open(path, fingerprint({"seed": 2}))

    def test_require_existing(self, tmp_path):
        with pytest.raises(CheckpointError, match="not found"):
            Checkpoint.open(
                tmp_path / "missing.jsonl", fingerprint({}),
                require_existing=True,
            )

    def test_scoped_view_shares_file(self, tmp_path):
        ck = Checkpoint.open(tmp_path / "ck.jsonl", fingerprint({}))
        scoped = ck.scoped("wl/")
        scoped.record("cell/0", 42)
        assert ck.get("wl/cell/0") == 42
        assert scoped.get("cell/0") == 42
        nested = scoped.scoped("inner/")
        nested.record("x", 1)
        assert ck.get("wl/inner/x") == 1

    def test_no_staging_residue(self, tmp_path):
        ck = Checkpoint.open(tmp_path / "ck.jsonl", fingerprint({}))
        ck.record("k", 1)
        assert [p.name for p in tmp_path.iterdir()] == ["ck.jsonl"]


class TestDamageTolerance:
    def _fresh(self, tmp_path, n_records=3):
        path = tmp_path / "ck.jsonl"
        fp = fingerprint({"damage": True})
        ck = Checkpoint.open(path, fp)
        for i in range(n_records):
            ck.record(f"cell/{i}", {"i": i})
        return path, fp

    def test_torn_trailing_line_dropped(self, tmp_path):
        path, fp = self._fresh(tmp_path)
        corrupt_checkpoint(path, line=3, how="truncate")
        ck = Checkpoint.open(path, fp)
        # The torn record's work is simply redone; the rest survives.
        assert ck.n_done == 2
        assert ck.get("cell/2") is None
        assert ck.get("cell/1") == {"i": 1}

    def test_interior_garbage_rejected(self, tmp_path):
        path, fp = self._fresh(tmp_path)
        corrupt_checkpoint(path, line=1, how="garbage")
        with pytest.raises(CheckpointError, match="corrupt"):
            Checkpoint.open(path, fp)

    def test_interior_truncation_rejected(self, tmp_path):
        path, fp = self._fresh(tmp_path)
        corrupt_checkpoint(path, line=2, how="truncate")
        with pytest.raises(CheckpointError):
            Checkpoint.open(path, fp)

    def test_damaged_header_rejected(self, tmp_path):
        path, fp = self._fresh(tmp_path)
        corrupt_checkpoint(path, line=0, how="garbage")
        with pytest.raises(CheckpointError):
            Checkpoint.open(path, fp)

    def test_not_a_checkpoint_rejected(self, tmp_path):
        path = tmp_path / "other.jsonl"
        path.write_text('{"kind": "something-else"}\n')
        with pytest.raises(CheckpointError, match="not a checkpoint header"):
            Checkpoint.open(path, fingerprint({}))

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        with pytest.raises(CheckpointError, match="empty"):
            Checkpoint.open(path, fingerprint({}))

    def test_unsupported_schema_rejected(self, tmp_path):
        path = tmp_path / "future.jsonl"
        path.write_text(
            json.dumps(
                {"schema": 99, "kind": "header", "fingerprint": "f", "meta": {}}
            )
            + "\n"
        )
        with pytest.raises(CheckpointError, match="schema"):
            Checkpoint.open(path, fingerprint({}))

    def test_corrupt_helper_validates_args(self, tmp_path):
        path, _ = self._fresh(tmp_path, n_records=1)
        with pytest.raises(IndexError):
            corrupt_checkpoint(path, line=10)
        with pytest.raises(ValueError):
            corrupt_checkpoint(path, line=0, how="nonsense")
