"""Tests for atomic file writes."""

import os

import pytest

from repro.robust.io import publish_atomic, write_atomic


class TestWriteAtomic:
    def test_creates_file(self, tmp_path):
        target = tmp_path / "out.txt"
        returned = write_atomic(target, "hello\n")
        assert returned == target
        assert target.read_text() == "hello\n"

    def test_overwrites_whole(self, tmp_path):
        target = tmp_path / "out.txt"
        write_atomic(target, "first version\n")
        write_atomic(target, "x\n")
        assert target.read_text() == "x\n"

    def test_no_staging_residue(self, tmp_path):
        target = tmp_path / "out.txt"
        write_atomic(target, "data\n")
        leftovers = [p.name for p in tmp_path.iterdir() if p.name != "out.txt"]
        assert leftovers == []

    def test_nested_directory_must_exist(self, tmp_path):
        with pytest.raises(OSError):
            write_atomic(tmp_path / "missing" / "out.txt", "data")

    def test_failure_cleans_staging(self, tmp_path):
        target = tmp_path / "out.txt"

        class Boom:
            def __str__(self):
                raise RuntimeError("boom")

        # str coercion failing mid-write must not leave a staging file.
        with pytest.raises(TypeError):
            write_atomic(target, Boom())  # type: ignore[arg-type]
        assert list(tmp_path.iterdir()) == []

    def test_relative_path(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        write_atomic("rel.txt", "ok\n")
        assert (tmp_path / "rel.txt").read_text() == "ok\n"


class TestPublishAtomic:
    def test_streaming_publish(self, tmp_path):
        final = tmp_path / "log.jsonl"
        staging = tmp_path / ".log.jsonl.partial"
        fh = open(staging, "w", encoding="utf-8")
        fh.write("line 1\n")
        fh.write("line 2\n")
        # Nothing visible at the final path until published.
        assert not final.exists()
        publish_atomic(fh, staging, final)
        assert fh.closed
        assert final.read_text() == "line 1\nline 2\n"
        assert not staging.exists()

    def test_publish_already_closed_handle(self, tmp_path):
        final = tmp_path / "log.jsonl"
        staging = tmp_path / ".staging"
        with open(staging, "w", encoding="utf-8") as fh:
            fh.write("done\n")
        publish_atomic(fh, staging, final)
        assert final.read_text() == "done\n"
