"""Checkpoint/resume properties of the analysis drivers.

The pinned property: interrupting a run after *any* completed unit of
work and resuming from its checkpoint yields results — and telemetry
replication/cell records — bit-identical to an uninterrupted run (only
wall-clock fields may differ; restored work reports ``elapsed_seconds``
of ``None`` because it was not redone).
"""

import io
import json

import pytest

from repro.analysis.calibrate import calibrate_cell
from repro.analysis.league import Entrant, league
from repro.analysis.sweep import SweepConfig, ratio_sweep
from repro.core.prio import prio_schedule
from repro.dag.builders import fork_join
from repro.obs.recorder import TelemetryRecorder
from repro.robust import Checkpoint, CheckpointError, FaultPlan, RetryPolicy, fingerprint
from repro.sim.engine import SimParams


class Interrupt(Exception):
    """Stands in for Ctrl-C at a deterministic point."""


def interrupt_after(n):
    def progress(done, total):
        if done == n:
            raise Interrupt

    return progress


def open_telemetry():
    buf = io.StringIO()
    return TelemetryRecorder.open(buf, command="test"), buf


def comparable_records(buf):
    """Telemetry records minus wall-clock and checkpoint bookkeeping."""
    records = []
    for line in buf.getvalue().splitlines():
        record = json.loads(line)
        if record["kind"] == "checkpoint":
            continue
        record.pop("elapsed_seconds", None)
        if record["kind"] == "stage":
            record.pop("seconds", None)
        records.append(record)
    return records


@pytest.fixture(scope="module")
def sweep_setup():
    dag = fork_join(6)
    order = prio_schedule(dag).schedule
    config = SweepConfig(mu_bits=(1.0,), mu_bss=(1.0, 4.0, 16.0), p=4, q=2)
    return dag, order, config


@pytest.fixture(scope="module")
def baseline(sweep_setup):
    dag, order, config = sweep_setup
    telemetry, buf = open_telemetry()
    result = ratio_sweep(dag, order, config, "wl", telemetry=telemetry)
    return result, comparable_records(buf)


FP = fingerprint({"suite": "resume-tests"})


class TestSweepResume:
    @pytest.mark.parametrize("interrupt_at", [1, 2, 3])
    def test_interrupt_anywhere_then_resume_is_bit_identical(
        self, tmp_path, sweep_setup, baseline, interrupt_at
    ):
        dag, order, config = sweep_setup
        base_result, base_records = baseline
        path = tmp_path / "ck.jsonl"

        telemetry, _ = open_telemetry()
        checkpoint = Checkpoint.open(path, FP)
        try:
            ratio_sweep(
                dag, order, config, "wl",
                telemetry=telemetry, checkpoint=checkpoint,
                progress=interrupt_after(interrupt_at),
            )
        except Interrupt:
            pass
        assert checkpoint.n_done == interrupt_at

        resumed_ck = Checkpoint.open(path, FP, require_existing=True)
        telemetry, buf = open_telemetry()
        resumed = ratio_sweep(
            dag, order, config, "wl",
            telemetry=telemetry, checkpoint=resumed_ck,
        )
        assert resumed.cells == base_result.cells
        # The resumed log reproduces every replication and cell record.
        assert comparable_records(buf) == base_records

    def test_parallel_resume_matches_serial_baseline(
        self, tmp_path, sweep_setup, baseline
    ):
        dag, order, config = sweep_setup
        base_result, _ = baseline
        path = tmp_path / "ck.jsonl"
        checkpoint = Checkpoint.open(path, FP)
        try:
            ratio_sweep(
                dag, order, config, "wl",
                checkpoint=checkpoint, progress=interrupt_after(1),
            )
        except Interrupt:
            pass
        resumed = ratio_sweep(
            dag, order, config, "wl",
            checkpoint=Checkpoint.open(path, FP, require_existing=True),
            jobs=2,
        )
        assert resumed.cells == base_result.cells

    def test_resume_without_telemetry(self, tmp_path, sweep_setup, baseline):
        dag, order, config = sweep_setup
        base_result, _ = baseline
        path = tmp_path / "ck.jsonl"
        checkpoint = Checkpoint.open(path, FP)
        try:
            ratio_sweep(
                dag, order, config, "wl",
                checkpoint=checkpoint, progress=interrupt_after(2),
            )
        except Interrupt:
            pass
        resumed = ratio_sweep(
            dag, order, config, "wl",
            checkpoint=Checkpoint.open(path, FP, require_existing=True),
        )
        assert resumed.cells == base_result.cells

    def test_completed_checkpoint_resumes_without_simulating(
        self, tmp_path, sweep_setup, baseline
    ):
        dag, order, config = sweep_setup
        base_result, _ = baseline
        path = tmp_path / "ck.jsonl"
        ratio_sweep(
            dag, order, config, "wl", checkpoint=Checkpoint.open(path, FP)
        )
        resumed = ratio_sweep(
            dag, order, config, "wl",
            checkpoint=Checkpoint.open(path, FP, require_existing=True),
        )
        assert resumed.cells == base_result.cells

    def test_checkpoint_for_wrong_grid_rejected(
        self, tmp_path, sweep_setup
    ):
        # The fingerprint normally prevents this; a hand-built collision
        # (same fingerprint, different grid) must still be caught by the
        # per-cell parameter check.
        dag, order, config = sweep_setup
        path = tmp_path / "ck.jsonl"
        checkpoint = Checkpoint.open(path, FP)
        checkpoint.record(
            "cell/0",
            {"mu_bit": 123.0, "mu_bs": 456.0, "ratios": {}},
        )
        with pytest.raises(CheckpointError, match="cell 0"):
            ratio_sweep(dag, order, config, "wl", checkpoint=checkpoint)


class TestFaultInjectedSweep:
    def test_faulty_sweep_bit_identical_to_fault_free(self, sweep_setup, baseline):
        dag, order, config = sweep_setup
        base_result, _ = baseline
        faults = FaultPlan(
            kills={(0, 0)}, failures={(2, 0)}, delays={(3, 0): 0.05}
        )
        faulty = ratio_sweep(
            dag, order, config, "wl", jobs=2,
            retry=RetryPolicy(max_attempts=3, base_delay=0.0),
            faults=faults,
        )
        assert faulty.cells == base_result.cells


class TestLeagueResume:
    def test_interrupt_then_resume(self, tmp_path):
        dag = fork_join(6)
        order = prio_schedule(dag).schedule
        params = SimParams(mu_bit=1.0, mu_bs=4.0)
        entrants = [
            Entrant.from_schedule("prio", order),
            Entrant("fifo", "fifo"),
        ]
        telemetry, base_buf = open_telemetry()
        base = league(
            dag, entrants, params, n_runs=8, seed=3, workload="wl",
            telemetry=telemetry,
        )
        path = tmp_path / "ck.jsonl"
        checkpoint = Checkpoint.open(path, FP)
        telemetry, _ = open_telemetry()
        with pytest.raises(Interrupt):
            league(
                dag, entrants, params, n_runs=8, seed=3, workload="wl",
                telemetry=telemetry, checkpoint=checkpoint,
                progress=interrupt_after(1),
            )
        assert checkpoint.n_done == 1
        telemetry, buf = open_telemetry()
        resumed = league(
            dag, entrants, params, n_runs=8, seed=3, workload="wl",
            telemetry=telemetry,
            checkpoint=Checkpoint.open(path, FP, require_existing=True),
        )
        assert resumed == base
        assert comparable_records(buf) == comparable_records(base_buf)


class TestCalibrateResume:
    def test_interrupt_then_resume(self, tmp_path):
        dag = fork_join(6)
        order = prio_schedule(dag).schedule
        params = SimParams(mu_bit=1.0, mu_bs=4.0)
        kwargs = dict(
            p=4, start_q=1, max_q=4, target_width=1e-6, seed=5, workload="wl"
        )
        telemetry, base_buf = open_telemetry()
        base = calibrate_cell(dag, order, params, telemetry=telemetry, **kwargs)
        assert len(base.steps) == 3  # q = 1, 2, 4

        def stop_at_q2(step):
            if step.q == 2:
                raise Interrupt

        path = tmp_path / "ck.jsonl"
        checkpoint = Checkpoint.open(path, FP)
        telemetry, _ = open_telemetry()
        with pytest.raises(Interrupt):
            calibrate_cell(
                dag, order, params, checkpoint=checkpoint,
                telemetry=telemetry, progress=stop_at_q2, **kwargs,
            )
        assert checkpoint.n_done == 2
        telemetry, buf = open_telemetry()
        resumed = calibrate_cell(
            dag, order, params, telemetry=telemetry,
            checkpoint=Checkpoint.open(path, FP, require_existing=True),
            **kwargs,
        )
        assert resumed.steps == base.steps
        assert resumed.converged == base.converged
        assert comparable_records(buf) == comparable_records(base_buf)
