"""Tests for the fault-tolerant chunk executor.

Every recovery path — retry after a worker exception, pool rebuild after
a killed worker or a progress-deadline stall, serial degradation when the
pool is unhealthy — must deliver results bit-identical to a clean run:
chunks are pure functions of their arguments.
"""

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.robust import FaultPlan, InjectedFault, RetryPolicy
from repro.robust.retry import _invoke, run_robust_chunks
from repro.sim.parallel import ParallelConfig

PAR = ParallelConfig(jobs=2)


def square(x):
    """Module-level so it is picklable for the worker pool."""
    return x * x


def poisoned(x):
    """Fails deterministically for one argument, every attempt."""
    if x == 2:
        raise ValueError("chunk 2 is poisoned")
    return x * x


def collect(fn, tasks, **kwargs):
    return dict(run_robust_chunks(fn, tasks, PAR, **kwargs))


def tasks_for(n):
    return [(i, (i,)) for i in range(n)]


EXPECTED = {i: i * i for i in range(4)}


class TestRetryPolicy:
    def test_defaults_valid(self):
        policy = RetryPolicy()
        assert policy.max_attempts == 3

    def test_backoff_doubles_and_caps(self):
        policy = RetryPolicy(base_delay=0.1, max_delay=0.5)
        assert policy.delay(0) == pytest.approx(0.1)
        assert policy.delay(1) == pytest.approx(0.2)
        assert policy.delay(2) == pytest.approx(0.4)
        assert policy.delay(3) == pytest.approx(0.5)  # capped
        assert policy.delay(10) == pytest.approx(0.5)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_attempts": 0},
            {"base_delay": -1.0},
            {"base_delay": 2.0, "max_delay": 1.0},
            {"timeout": 0.0},
            {"max_pool_rebuilds": -1},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            RetryPolicy(**kwargs)


class TestFaultPlan:
    def test_spec_lookup(self):
        plan = FaultPlan(
            kills={(0, 0)}, failures={(1, 1)}, delays={(2, 0): 1.5}
        )
        assert plan.spec(0, 0) == ("kill", None)
        assert plan.spec(1, 1) == ("fail", None)
        assert plan.spec(2, 0) == ("delay", 1.5)
        assert plan.spec(0, 1) is None
        assert not plan.empty
        assert FaultPlan().empty

    def test_overlapping_coordinates_rejected(self):
        with pytest.raises(ValueError, match="twice"):
            FaultPlan(kills={(0, 0)}, failures={(0, 0)})

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            FaultPlan(delays={(0, 0): -1.0})

    def test_kill_outside_worker_raises_not_exits(self):
        # A kill fault during serial degradation must never take the
        # parent process down.
        with pytest.raises(InjectedFault):
            _invoke(square, (3,), ("kill", None), in_worker=False)

    def test_invoke_without_fault(self):
        assert _invoke(square, (3,), None) == 9


class TestRunRobustChunks:
    def test_clean_run(self):
        assert collect(square, tasks_for(4)) == EXPECTED

    def test_duplicate_keys_rejected(self):
        with pytest.raises(ValueError, match="unique"):
            collect(square, [(0, (0,)), (0, (1,))])

    def test_fail_fault_retried(self):
        registry = MetricsRegistry()
        results = collect(
            square,
            tasks_for(4),
            faults=FaultPlan(failures={(1, 0)}),
            retry=RetryPolicy(base_delay=0.0),
            metrics=registry,
        )
        assert results == EXPECTED
        assert registry.counter("robust.retry").value == 1
        assert registry.counter("robust.pool_rebuild").value == 0

    def test_kill_fault_rebuilds_pool(self):
        registry = MetricsRegistry()
        results = collect(
            square,
            tasks_for(4),
            faults=FaultPlan(kills={(0, 0)}),
            retry=RetryPolicy(base_delay=0.0),
            metrics=registry,
        )
        assert results == EXPECTED
        assert registry.counter("robust.pool_rebuild").value == 1
        assert registry.counter("robust.retry").value >= 1

    def test_timeout_stall_rebuilds_pool(self):
        registry = MetricsRegistry()
        results = collect(
            square,
            tasks_for(3),
            faults=FaultPlan(delays={(0, 0): 2.0}),
            retry=RetryPolicy(timeout=0.25, base_delay=0.0),
            metrics=registry,
        )
        assert results == {0: 0, 1: 1, 2: 4}
        assert registry.counter("robust.timeout").value >= 1
        assert registry.counter("robust.pool_rebuild").value >= 1

    def test_exhausted_attempts_degrade_to_serial(self):
        registry = MetricsRegistry()
        results = collect(
            square,
            tasks_for(4),
            faults=FaultPlan(failures={(2, 0), (2, 1)}),
            retry=RetryPolicy(max_attempts=2, base_delay=0.0),
            metrics=registry,
        )
        assert results == EXPECTED
        assert registry.counter("robust.degraded_serial").value == 1

    def test_unhealthy_pool_degrades_everything_to_serial(self):
        registry = MetricsRegistry()
        results = collect(
            square,
            tasks_for(4),
            faults=FaultPlan(kills={(0, 0), (0, 1)}),
            retry=RetryPolicy(
                max_attempts=5, base_delay=0.0, max_pool_rebuilds=1
            ),
            metrics=registry,
        )
        assert results == EXPECTED
        assert registry.counter("robust.pool_rebuild").value == 2
        # Every chunk still unfinished after the second rebuild ran
        # in-process.
        assert registry.counter("robust.degraded_serial").value >= 1

    def test_poisoned_chunk_still_fails_loudly(self):
        with pytest.raises(ValueError, match="poisoned"):
            collect(
                poisoned,
                tasks_for(4),
                retry=RetryPolicy(max_attempts=2, base_delay=0.0),
            )

    def test_default_policy_when_only_faults_given(self):
        assert collect(square, tasks_for(2), faults=FaultPlan()) == {0: 0, 1: 1}

    def test_abandoned_iterator_cleans_up_pool(self):
        import multiprocessing
        import time

        gen = run_robust_chunks(square, tasks_for(4), PAR)
        next(gen)
        gen.close()
        deadline = time.monotonic() + 10.0
        while multiprocessing.active_children() and time.monotonic() < deadline:
            time.sleep(0.05)
        assert not multiprocessing.active_children()
