"""Fixtures for the service suite: real servers on ephemeral ports.

Everything here boots the *actual* asyncio server (no mocked transport,
no handler-level shortcuts) — the point of the suite is the wire
contract, and a fake would test the fake.
"""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.perf.cache import ScheduleCache
from repro.robust.retry import RetryPolicy
from repro.serve.app import PrioService, ServerThread
from repro.serve.client import ServeClient
from repro.serve.limits import ServiceLimits

REPO_ROOT = Path(__file__).resolve().parents[2]


def make_limits(**overrides) -> ServiceLimits:
    """Test-friendly limits: short I/O deadline, generous processing."""
    defaults = dict(
        max_inflight=16,
        max_body_bytes=1024 * 1024,
        io_timeout=2.0,
        retry=RetryPolicy(max_attempts=1, timeout=60.0),
    )
    defaults.update(overrides)
    return ServiceLimits(**defaults)


@pytest.fixture(scope="module")
def server():
    """A cached service on an ephemeral port, shared per test module."""
    service = PrioService(cache=ScheduleCache(), limits=make_limits())
    with ServerThread(service) as (host, port):
        yield service, host, port


@pytest.fixture
def client(server):
    _, host, port = server
    with ServeClient(host, port, timeout=30.0) as c:
        yield c


def serve_subprocess(*extra_args: str) -> subprocess.Popen:
    """``prio serve --port 0`` as a real subprocess (CLI + signal tests).

    The caller reads the announce line for the bound port and must
    terminate the process.
    """
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    return subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "serve", "--port", "0",
         *extra_args],
        stdout=subprocess.PIPE,
        stderr=subprocess.DEVNULL,
        text=True,
        env=env,
        cwd=str(REPO_ROOT),
    )


def announced_port(proc: subprocess.Popen) -> int:
    line = proc.stdout.readline().strip()
    assert line.startswith("serving on http://"), line
    return int(line.rsplit(":", 1)[1])
