"""End-to-end service tests: the bit-identity contract under real load.

Every assertion here goes over a real socket to the real asyncio server.
The core claim — an HTTP response is byte-for-byte the canonical
encoding of the equivalent in-process library call — is checked serially,
under N concurrent hammering clients, through cache hits and misses,
through the parallel replication executor, and across the disk cache
tier.  Operational behaviour (429 saturation, SIGTERM drain, CLI
announce) rides in the same file because it needs the same booted
server.
"""

from __future__ import annotations

import json
import signal
import threading
import time

import numpy as np
import pytest

from repro.dag.graph import Dag
from repro.perf.cache import ScheduleCache
from repro.robust.retry import RetryPolicy
from repro.serve.app import PrioService, ServerThread
from repro.serve.client import ServeClient
from repro.serve.protocol import encode, schedule_payload, simulate_payload
from repro.sim.engine import SimParams
from repro.workloads.registry import get_workload

from .conftest import announced_port, make_limits, serve_subprocess

pytestmark = pytest.mark.filterwarnings("ignore::pytest.PytestUnraisableExceptionWarning")


def _sample_dags() -> dict[str, Dag]:
    rng = np.random.default_rng(20060427)
    random_dag = Dag(
        30,
        [
            (i, j)
            for i in range(30)
            for j in range(i + 1, 30)
            if rng.random() < 0.12
        ],
    )
    return {
        "airsn": get_workload("airsn-small"),
        "chain": Dag(12, [(i, i + 1) for i in range(11)]),
        "fanout": Dag(16, [(0, i) for i in range(1, 16)]),
        "random": random_dag,
        "empty": Dag(0, []),
        "singleton": Dag(1, []),
    }


# ----------------------------------------------------------------------
# Bit-identity: serial
# ----------------------------------------------------------------------


def test_schedule_bit_identity_all_algorithms(client):
    for name, dag in _sample_dags().items():
        for algorithm in ("prio", "fifo", "topological"):
            response = client.schedule(dag, algorithm)
            assert response.status == 200, (name, algorithm, response.body)
            expected = encode(schedule_payload(dag, algorithm))
            assert response.body == expected, (name, algorithm)


def test_schedule_bit_identity_with_kwargs(client):
    dag = get_workload("airsn-small")
    response = client.schedule(dag, "prio", combine="topological")
    assert response.status == 200
    expected = encode(
        schedule_payload(dag, "prio", combine="topological")
    )
    assert response.body == expected


def test_simulate_single_bit_identity_all_policies(client):
    dag = get_workload("airsn-small")
    params = SimParams(mu_bit=1.0, mu_bs=16.0)
    for policy in ("prio", "fifo", "random"):
        for seed in (0, 7, 12345):
            response = client.simulate(dag, params, seed=seed, policy=policy)
            assert response.status == 200, response.body
            expected = encode(simulate_payload(dag, params, seed, policy, 1))
            assert response.body == expected, (policy, seed)


def test_simulate_replication_batch_bit_identity(client):
    dag = get_workload("airsn-small")
    params = SimParams(mu_bit=0.5, mu_bs=4.0, rollover=True)
    response = client.simulate(dag, params, seed=3, replications=16)
    assert response.status == 200
    expected = encode(simulate_payload(dag, params, 3, "prio", 16))
    assert response.body == expected
    payload = response.payload
    assert payload["kind"] == "replications"
    assert len(payload["metrics"]["execution_time"]) == 16


def test_simulate_batch_over_parallel_executor_matches_serial():
    """A sim_jobs>1 server serves the same bytes as the serial library."""
    dag = get_workload("airsn-small")
    params = SimParams(mu_bit=1.0, mu_bs=16.0)
    service = PrioService(
        cache=ScheduleCache(), limits=make_limits(), sim_jobs=2
    )
    with ServerThread(service) as (host, port):
        with ServeClient(host, port) as client:
            response = client.simulate(dag, params, seed=11, replications=8)
    assert response.status == 200
    expected = encode(simulate_payload(dag, params, 11, "prio", 8, jobs=1))
    assert response.body == expected


# ----------------------------------------------------------------------
# Bit-identity: N concurrent clients hammering one server
# ----------------------------------------------------------------------


def test_concurrent_hammer_bit_identical(server):
    service, host, port = server
    dags = _sample_dags()
    params = SimParams(mu_bit=1.0, mu_bs=16.0)
    # Reference bodies computed in-process, without any server or cache.
    expected: dict[tuple, bytes] = {}
    for name, dag in dags.items():
        for algorithm in ("prio", "fifo"):
            expected[("schedule", name, algorithm)] = encode(
                schedule_payload(dag, algorithm)
            )
    for name in ("airsn", "chain", "random"):
        for seed in (0, 1):
            expected[("simulate", name, seed)] = encode(
                simulate_payload(dags[name], params, seed, "prio", 1)
            )
    keys = sorted(expected, key=repr)

    n_clients = 8
    failures: list = []
    barrier = threading.Barrier(n_clients)

    def hammer(worker: int) -> None:
        rng = np.random.default_rng(worker)
        try:
            with ServeClient(host, port, timeout=60.0) as client:
                barrier.wait(timeout=30)
                for _ in range(25):
                    key = keys[rng.integers(len(keys))]
                    if key[0] == "schedule":
                        _, name, algorithm = key
                        response = client.schedule(dags[name], algorithm)
                    else:
                        _, name, seed = key
                        response = client.simulate(
                            dags[name], params, seed=seed
                        )
                    if response.status != 200:
                        failures.append((key, response.status, response.body))
                    elif response.body != expected[key]:
                        failures.append((key, "mismatch"))
        except Exception as exc:  # noqa: BLE001 - report, don't deadlock
            failures.append((worker, repr(exc)))

    threads = [
        threading.Thread(target=hammer, args=(w,)) for w in range(n_clients)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=120)
    assert not failures, failures[:5]
    # Every admitted request released its slot.
    assert service.gate.inflight == 0
    # 200 requests over ~20 distinct cache keys: the cache must have hit.
    stats = service.cache.stats()
    assert stats["hits"] > stats["misses"]


def test_cache_hit_counters_increase_on_repeated_dag():
    service = PrioService(cache=ScheduleCache(), limits=make_limits())
    dag = get_workload("airsn-small")
    with ServerThread(service) as (host, port):
        with ServeClient(host, port) as client:
            first = client.schedule(dag)
            assert first.status == 200
            after_first = service.cache.stats()
            second = client.schedule(dag)
            assert second.status == 200
            after_second = service.cache.stats()
            assert second.body == first.body
            # /metrics reports the same counters via the registry.
            snapshot = client.metrics().payload["metrics"]["counters"]
    assert after_first["misses"] >= 1
    assert after_second["hits"] == after_first["hits"] + 1
    assert snapshot["cache.hit"] == after_second["hits"]
    assert snapshot["cache.miss"] == after_second["misses"]


def test_disk_cache_tier_shared_across_server_instances(tmp_path):
    dag = get_workload("airsn-small")
    bodies = []
    for _ in range(2):  # second server starts cold in memory, warm on disk
        service = PrioService(
            cache=ScheduleCache(directory=tmp_path), limits=make_limits()
        )
        with ServerThread(service) as (host, port):
            with ServeClient(host, port) as client:
                response = client.schedule(dag)
                assert response.status == 200
                bodies.append(response.body)
        stats = service.cache.stats()
    assert bodies[0] == bodies[1] == encode(schedule_payload(dag, "prio"))
    assert stats["disk_hits"] == 1  # the second instance reused the file


# ----------------------------------------------------------------------
# Backpressure: 429 when --max-inflight is saturated
# ----------------------------------------------------------------------


def _slow_simulate_body(dag) -> dict:
    from repro.dag.io_json import dag_to_json

    return {
        "dag": dag_to_json(dag),
        "params": {"mu_bit": 0.02, "mu_bs": 1.0},
        "seed": 1,
        "replications": 300,
    }


def test_429_when_inflight_saturated():
    dag = get_workload("airsn-small")
    service = PrioService(
        cache=ScheduleCache(), limits=make_limits(max_inflight=1)
    )
    with ServerThread(service) as (host, port):
        done: dict = {}

        def occupy() -> None:
            with ServeClient(host, port, timeout=300.0) as slow:
                done["response"] = slow.post_json(
                    "/simulate", _slow_simulate_body(dag)
                )

        holder = threading.Thread(target=occupy)
        holder.start()
        try:
            with ServeClient(host, port) as client:
                # /metrics is ungated: poll it until the slot is taken.
                deadline = time.time() + 30
                while time.time() < deadline:
                    if client.metrics().payload["in_flight"] >= 1:
                        break
                    time.sleep(0.01)
                else:
                    pytest.fail("slow request never became in-flight")
                rejected = client.schedule(dag)
                assert rejected.status == 429
                assert rejected.error_code == "overloaded"
                # Health stays reachable at saturation.
                assert client.healthz().status == 200
                counters = client.metrics().payload["metrics"]["counters"]
                assert counters["serve.errors.overloaded"] >= 1
        finally:
            holder.join(timeout=300)
        assert done["response"].status == 200
        # The slot was released: the same request now succeeds.
        with ServeClient(host, port) as client:
            accepted = client.schedule(dag)
            assert accepted.status == 200
            assert accepted.body == encode(schedule_payload(dag, "prio"))


# ----------------------------------------------------------------------
# Graceful drain on SIGTERM (real CLI subprocess)
# ----------------------------------------------------------------------


def test_sigterm_drains_inflight_requests_cleanly():
    proc = serve_subprocess()
    try:
        port = announced_port(proc)
        dag = get_workload("airsn-small")
        result: dict = {}

        def inflight() -> None:
            with ServeClient("127.0.0.1", port, timeout=300.0) as client:
                result["response"] = client.post_json(
                    "/simulate", _slow_simulate_body(dag)
                )

        worker = threading.Thread(target=inflight)
        worker.start()
        # Wait until the request occupies a slot, then pull the plug.
        with ServeClient("127.0.0.1", port) as client:
            deadline = time.time() + 30
            while time.time() < deadline:
                if client.metrics().payload["in_flight"] >= 1:
                    break
                time.sleep(0.01)
            else:
                pytest.fail("request never became in-flight")
        proc.send_signal(signal.SIGTERM)
        worker.join(timeout=300)
        returncode = proc.wait(timeout=60)
        # The in-flight response completed, bit-identical, and the
        # process exited cleanly.
        assert result["response"].status == 200
        expected = encode(
            simulate_payload(
                dag, SimParams(mu_bit=0.02, mu_bs=1.0), 1, "prio", 300
            )
        )
        assert result["response"].body == expected
        assert returncode == 0
        # A drained server accepts nothing new.
        with pytest.raises(OSError):
            with ServeClient("127.0.0.1", port, timeout=5.0) as client:
                client.healthz()
    finally:
        if proc.poll() is None:
            proc.kill()
        proc.wait(timeout=30)


# ----------------------------------------------------------------------
# Orphaned work: a 504 does not free capacity the compute still occupies
# ----------------------------------------------------------------------


def test_504_keeps_slot_held_until_orphaned_work_finishes():
    """Regression: a request that blew its deadline used to release its
    in-flight slot immediately while its compute thread kept running —
    repeated timeouts could pile up unbounded invisible work.  The slot
    must stay held (and be visible as ``serve.orphaned``) until the
    detached computation actually finishes."""
    dag = get_workload("airsn-small")
    body = _slow_simulate_body(dag)
    body["replications"] = 500  # several seconds of real compute
    service = PrioService(
        cache=ScheduleCache(),
        limits=make_limits(
            max_inflight=1,
            retry=RetryPolicy(max_attempts=1, timeout=0.3),
        ),
    )
    with ServerThread(service) as (host, port):
        with ServeClient(host, port, timeout=60.0) as client:
            timed_out = client.post_json("/simulate", body)
            assert timed_out.status == 504
            assert timed_out.error_code == "deadline_exceeded"
            # The compute thread is still running: its slot stays held.
            payload = client.metrics().payload
            assert payload["orphaned"] == 1
            assert payload["in_flight"] == 1
            # New work is refused while the orphan occupies the only
            # slot (the old behaviour: this returned 200, silently
            # stacking a second computation on top of the first).
            rejected = client.schedule(dag)
            assert rejected.status == 429
            assert rejected.error_code == "overloaded"
            # The orphan resolves on its own and gives the slot back.
            deadline = time.time() + 120
            while time.time() < deadline:
                payload = client.metrics().payload
                if payload["orphaned"] == 0 and payload["in_flight"] == 0:
                    break
                time.sleep(0.05)
            else:
                pytest.fail("orphaned computation never resolved")
            accepted = client.schedule(dag)
            assert accepted.status == 200
            assert accepted.body == encode(schedule_payload(dag, "prio"))
            counters = client.metrics().payload["metrics"]["counters"]
            assert counters["serve.orphaned.total"] >= 1
            assert counters["serve.errors.deadline_exceeded"] >= 1


# ----------------------------------------------------------------------
# Drain semantics: a request being read is finished, never dropped
# ----------------------------------------------------------------------


def test_drain_completes_request_still_reading_its_body():
    """Regression: drain used to wait only for *admitted* requests and
    then cancel every connection task — a request whose body was still
    being read (not yet admitted) was silently dropped without any
    response.  Drain must let it finish and answer it."""
    import socket as socketlib

    from repro.dag.io_json import dag_to_json

    dag = get_workload("airsn-small")
    service = PrioService(cache=ScheduleCache(), limits=make_limits())
    st = ServerThread(service)
    host, port = st.start()
    try:
        body = json.dumps({"dag": dag_to_json(dag)}).encode()
        half = len(body) // 2
        with socketlib.create_connection((host, port), timeout=30.0) as sock:
            head = (
                f"POST /schedule HTTP/1.1\r\nHost: x\r\n"
                f"Content-Length: {len(body)}\r\n\r\n"
            ).encode()
            sock.sendall(head + body[:half])
            time.sleep(0.2)  # let the server start reading the body
            st._loop.call_soon_threadsafe(service.request_shutdown)
            deadline = time.time() + 30
            while not service.draining and time.time() < deadline:
                time.sleep(0.01)
            assert service.draining
            sock.sendall(body[half:])
            chunks = []
            while True:
                chunk = sock.recv(65536)
                if not chunk:
                    break
                chunks.append(chunk)
        raw = b"".join(chunks)
        # Exactly one complete, bit-identical response came back.
        assert raw.count(b"HTTP/1.1 ") == 1
        head_bytes, _, response_body = raw.partition(b"\r\n\r\n")
        assert head_bytes.split(b" ", 2)[1] == b"200"
        assert response_body == encode(schedule_payload(dag, "prio"))
    finally:
        st.stop()


# ----------------------------------------------------------------------
# ServerThread.stop: the closed-loop shutdown race
# ----------------------------------------------------------------------


def test_server_thread_stop_survives_closed_loop_race():
    """Regression: ``stop()`` checked ``thread.is_alive()`` and then
    called ``call_soon_threadsafe`` — if the serving loop finished (and
    closed) between the two, it crashed with ``RuntimeError: Event loop
    is closed``.  Recreate the race deterministically by handing stop()
    a closed loop while the real one drains."""
    import asyncio

    service = PrioService(cache=ScheduleCache(), limits=make_limits())
    st = ServerThread(service)
    st.start()
    real_loop = st._loop
    closed = asyncio.new_event_loop()
    closed.close()
    st._loop = closed
    # Deliver the real shutdown so the thread exits on its own; stop()
    # must survive its signal attempt hitting the closed loop.
    real_loop.call_soon_threadsafe(service.request_shutdown)
    st.stop(timeout=60.0)
    # And stop() stays idempotent after success.
    st.stop()


# ----------------------------------------------------------------------
# Sharded tier: a shard killed mid-request is retried transparently
# ----------------------------------------------------------------------


def test_shard_killed_mid_request_recovers_via_retry():
    """SIGKILL a shard while it is computing a request: the retry budget
    re-dispatches to the respawned worker and the client still gets its
    200, byte-identical — plus the restart shows up in /metrics."""
    from repro.dag.io_json import dag_to_json
    from repro.serve.shard import dag_shard_key

    dag = get_workload("airsn-small")
    service = PrioService(
        cache=ScheduleCache(),
        limits=make_limits(
            retry=RetryPolicy(
                max_attempts=3, base_delay=0.05, timeout=60.0,
                max_pool_rebuilds=2,
            ),
        ),
        shards=2,
        stall=1.0,  # every request stalls 1s in the worker: a kill
        #             window that needs no timing luck
    )
    with ServerThread(service) as (host, port):
        routing_body = json.dumps({"dag": dag_to_json(dag)}).encode()
        dispatcher = service.dispatcher
        index = dispatcher.ring.lookup(dag_shard_key(routing_body))
        handle = dispatcher.handles[index]
        result: dict = {}

        def issue() -> None:
            with ServeClient(host, port, timeout=120.0) as client:
                result["response"] = client.schedule(dag)

        worker = threading.Thread(target=issue)
        worker.start()
        deadline = time.time() + 30
        while not handle.pending and time.time() < deadline:
            time.sleep(0.01)
        assert handle.pending, "request never reached the shard"
        handle.process.kill()
        worker.join(timeout=120)
        response = result["response"]
        assert response.status == 200, response.body
        assert response.body == encode(schedule_payload(dag, "prio"))
        with ServeClient(host, port) as client:
            counters = client.metrics().payload["metrics"]["counters"]
            assert counters[f"serve.shard.{index}.deaths"] >= 1
            assert counters[f"serve.shard.{index}.restarts"] >= 1
            assert counters["serve.retry"] >= 1


def test_metrics_endpoint_shape(client):
    dag = get_workload("airsn-small")
    assert client.schedule(dag).status == 200
    payload = client.metrics().payload
    assert payload["kind"] == "metrics"
    counters = payload["metrics"]["counters"]
    assert counters["serve.requests./schedule"] >= 1
    assert payload["latency"]["/schedule"]["count"] >= 1
    assert payload["latency"]["/schedule"]["p95"] >= payload["latency"][
        "/schedule"
    ]["p50"] >= 0.0
    assert payload["cache"]["hits"] + payload["cache"]["misses"] >= 1
    timers = payload["metrics"]["timers"]
    assert timers["serve.latency./schedule"]["count"] >= 1
