"""Protocol robustness: every malformed input maps to its documented code.

The server's failure vocabulary (docs/API.md, "Serving") is asserted
here input class by input class — malformed JSON, non-object bodies,
cyclic "dags", oversized payloads, truncated bodies, unknown endpoints,
wrong methods, bad parameters — partly property-tested with the
hypothesis strategies the perf equivalence suite already uses.  After
every abuse the suite confirms the server still answers a well-formed
request and holds zero in-flight slots: the semaphore can never leak and
the server can never hang.
"""

from __future__ import annotations

import json
import socket

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.dag.graph import Dag
from repro.dag.io_json import dag_to_json
from repro.serve.errors import ERROR_CODES, ServeError
from repro.serve.protocol import encode, schedule_payload
from repro.sim.engine import SimParams

from ..perf.strategies import dags, sim_params

PROPERTY = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow,
                           HealthCheck.function_scoped_fixture],
)


def _raw_exchange(host: str, port: int, data: bytes, *,
                  shutdown_write: bool = False, timeout: float = 30.0) -> bytes:
    """Send raw bytes, optionally half-close, and read the full response."""
    with socket.create_connection((host, port), timeout=timeout) as sock:
        sock.sendall(data)
        if shutdown_write:
            sock.shutdown(socket.SHUT_WR)
        chunks = []
        while True:
            chunk = sock.recv(65536)
            if not chunk:
                break
            chunks.append(chunk)
            # Responses here are small; stop once the body is complete.
            blob = b"".join(chunks)
            if b"\r\n\r\n" in blob:
                head, _, body = blob.partition(b"\r\n\r\n")
                for line in head.split(b"\r\n"):
                    if line.lower().startswith(b"content-length:"):
                        if len(body) >= int(line.split(b":")[1]):
                            return blob
        return b"".join(chunks)


def _status_and_code(raw: bytes) -> tuple[int, str | None]:
    head, _, body = raw.partition(b"\r\n\r\n")
    status = int(head.split(b" ", 2)[1])
    try:
        code = json.loads(body.decode())["error"]["code"]
    except (ValueError, KeyError):
        code = None
    return status, code


def _post(host, port, path, body: bytes, **kwargs) -> bytes:
    request = (
        f"POST {path} HTTP/1.1\r\nHost: x\r\nContent-Type: application/json"
        f"\r\nContent-Length: {len(body)}\r\nConnection: close\r\n\r\n"
    ).encode() + body
    return _raw_exchange(host, port, request, **kwargs)


def _assert_recovered(service, client):
    """After any abuse: zero slots held, and a real request still works."""
    assert service.gate.inflight == 0
    dag = Dag(3, [(0, 1), (1, 2)])
    response = client.schedule(dag)
    assert response.status == 200
    assert response.body == encode(schedule_payload(dag, "prio"))


# ----------------------------------------------------------------------
# Malformed JSON and shapes
# ----------------------------------------------------------------------


@PROPERTY
@given(garbage=st.binary(min_size=1, max_size=200).filter(
    lambda b: not b.strip().startswith((b"{", b"[", b'"'))))
def test_malformed_json_returns_bad_json(server, client, garbage):
    service, host, port = server
    status, code = _status_and_code(_post(host, port, "/schedule", garbage))
    assert (status, code) == (400, "bad_json")
    _assert_recovered(service, client)


@PROPERTY
@given(payload=st.one_of(
    st.integers(), st.booleans(), st.none(),
    st.lists(st.integers(), max_size=3), st.text(max_size=20)))
def test_non_object_json_returns_invalid_request(server, client, payload):
    service, host, port = server
    body = json.dumps(payload).encode()
    status, code = _status_and_code(_post(host, port, "/simulate", body))
    assert (status, code) == (400, "invalid_request")
    _assert_recovered(service, client)


def test_missing_dag_field(client):
    response = client.post_json("/schedule", {"algorithm": "prio"})
    assert (response.status, response.error_code) == (400, "invalid_request")


@pytest.mark.parametrize(
    "arcs",
    [
        [[0, 1], [1, 0]],                    # 2-cycle
        [[0, 0]],                            # self-loop
        [[0, 1], [1, 2], [2, 0]],            # 3-cycle
    ],
)
def test_cyclic_dag_returns_invalid_dag(server, client, arcs):
    service, _, _ = server
    n = 1 + max(max(arc) for arc in arcs)
    payload = {"dag": {"format": "repro-dag-v1", "n": n, "arcs": arcs}}
    response = client.post_json("/schedule", payload)
    assert (response.status, response.error_code) == (400, "invalid_dag")
    _assert_recovered(service, client)


#: Every class of malformed dag payload; shared by the /schedule and
#: /session cases below — both endpoints parse the same way, so both
#: must answer the same structured 400.
MALFORMED_DAGS = [
    {"format": "wrong-format", "n": 1, "arcs": []},
    {"format": "repro-dag-v1", "n": "three", "arcs": []},
    {"format": "repro-dag-v1", "n": "3", "arcs": []},      # numeric string
    {"format": "repro-dag-v1", "n": 2.0, "arcs": []},      # float n
    {"format": "repro-dag-v1", "n": True, "arcs": []},     # bool n
    {"format": "repro-dag-v1", "n": 2, "arcs": [[0]]},
    {"format": "repro-dag-v1", "n": 2, "arcs": [["a", "b"]]},
    {"format": "repro-dag-v1", "n": 2, "arcs": [[True, 1]]},   # bool id
    {"format": "repro-dag-v1", "n": 2, "arcs": [[0.0, 1]]},    # float id
    {"format": "repro-dag-v1", "n": 2, "arcs": [[0, 5]]},
    {"format": "repro-dag-v1", "n": 2, "arcs": [[1, 1]]},      # self-loop
    {"format": "repro-dag-v1", "n": 2, "arcs": [[0, 1], [0, 1]]},  # dup arc
    {"format": "repro-dag-v1", "n": 2, "arcs": [[0, 1], [1, 0]]},  # cycle
    {"format": "repro-dag-v1", "n": 2, "arcs": "not-a-list"},
    {"format": "repro-dag-v1", "n": 2, "arcs": [], "labels": [1, 2]},
    {"format": "repro-dag-v1", "n": 2, "arcs": [],
     "labels": ["a", "a"]},                                # duplicate ids
    {"format": "repro-dag-v1", "n": 2, "arcs": [],
     "labels": ["only-one"]},                              # label count
    "not-an-object",
    42,
]


@pytest.mark.parametrize("dag_payload", MALFORMED_DAGS)
def test_malformed_dag_payloads_return_invalid_dag(client, dag_payload):
    response = client.post_json("/schedule", {"dag": dag_payload})
    assert (response.status, response.error_code) == (400, "invalid_dag")


@pytest.mark.parametrize("dag_payload", MALFORMED_DAGS)
def test_malformed_session_dags_return_invalid_dag(server, client, dag_payload):
    """POST /session validates its dag with the same vocabulary — a bad
    dag in a session request is a structured 400, never a 500, and no
    session is created for it."""
    service, _, _ = server
    response = client.post_json("/session", {"dag": dag_payload})
    assert (response.status, response.error_code) == (400, "invalid_dag")
    _assert_recovered(service, client)


@PROPERTY
@given(dag=dags(max_n=8), params=sim_params())
def test_valid_generated_requests_succeed(server, client, dag, params):
    """The flip side: everything the strategies generate is accepted and
    served bit-identically (no over-rejection hiding under the 400s)."""
    service, _, _ = server
    response = client.schedule(dag)
    assert response.status == 200
    assert response.body == encode(
        schedule_payload(dag, "prio", cache=service.cache)
    )
    sim = client.simulate(dag, params, seed=5)
    assert sim.status == 200
    assert service.gate.inflight == 0


# ----------------------------------------------------------------------
# Bad request fields
# ----------------------------------------------------------------------


@pytest.mark.parametrize(
    "mutation",
    [
        {"algorithm": "quantum"},
        {"kwargs": "not-an-object"},
        {"surprise": 1},
    ],
)
def test_bad_schedule_fields_return_invalid_request(client, mutation):
    body = {"dag": dag_to_json(Dag(2, [(0, 1)]))}
    body.update(mutation)
    response = client.post_json("/schedule", body)
    assert (response.status, response.error_code) == (400, "invalid_request")


def test_unknown_prio_kwargs_return_invalid_request(client):
    body = {
        "dag": dag_to_json(Dag(2, [(0, 1)])),
        "kwargs": {"no_such_knob": True},
    }
    response = client.post_json("/schedule", body)
    assert (response.status, response.error_code) == (400, "invalid_request")
    assert "no_such_knob" in response.payload["error"]["message"]


@pytest.mark.parametrize(
    "mutation",
    [
        {"params": {"mu_bit": -1.0, "mu_bs": 16.0}},
        {"params": {"mu_bit": 1.0}},
        {"params": {"mu_bit": 1.0, "mu_bs": 16.0, "warp": 9}},
        {"params": {"mu_bit": "fast", "mu_bs": 16.0}},
        {"params": None},
        {"seed": "zero"},
        {"seed": -3},
        {"seed": 1.5},
        {"policy": "psychic"},
        {"replications": 0},
        {"replications": "many"},
        {"extra_field": 1},
    ],
)
def test_bad_simulate_fields_return_invalid_request(client, mutation):
    body = {
        "dag": dag_to_json(Dag(2, [(0, 1)])),
        "params": {"mu_bit": 1.0, "mu_bs": 16.0},
        "seed": 0,
    }
    body.update(mutation)
    response = client.post_json("/simulate", body)
    assert (response.status, response.error_code) == (400, "invalid_request")


# ----------------------------------------------------------------------
# Transport-level abuse
# ----------------------------------------------------------------------


def test_oversized_payload_returns_413(server, client):
    service, host, port = server
    limit = service.limits.max_body_bytes
    body = b"x" * (limit + 1)
    status, code = _status_and_code(_post(host, port, "/schedule", body))
    assert (status, code) == (413, "payload_too_large")
    _assert_recovered(service, client)


def test_oversized_content_length_rejected_without_reading_body(server, client):
    """A huge Content-Length is refused up front — the server never
    buffers the claimed body."""
    service, host, port = server
    request = (
        "POST /schedule HTTP/1.1\r\nHost: x\r\n"
        f"Content-Length: {10**12}\r\n\r\n"
    ).encode()
    raw = _raw_exchange(host, port, request)
    assert _status_and_code(raw) == (413, "payload_too_large")
    _assert_recovered(service, client)


@PROPERTY
@given(fraction=st.floats(min_value=0.0, max_value=0.95))
def test_truncated_body_returns_400_and_never_hangs(server, client, fraction):
    service, host, port = server
    body = json.dumps(
        {"dag": dag_to_json(Dag(3, [(0, 1), (1, 2)]))}
    ).encode()
    sent = body[: int(len(body) * fraction)]
    request = (
        f"POST /schedule HTTP/1.1\r\nHost: x\r\n"
        f"Content-Length: {len(body)}\r\n\r\n"
    ).encode() + sent
    raw = _raw_exchange(host, port, request, shutdown_write=True)
    assert _status_and_code(raw) == (400, "truncated_body")
    _assert_recovered(service, client)


def test_stalled_body_times_out_with_400(server, client):
    """A client that sends half a body then goes silent is cut off by the
    I/O deadline, not held open forever."""
    service, host, port = server
    request = (
        b"POST /schedule HTTP/1.1\r\nHost: x\r\nContent-Length: 100\r\n\r\n"
        b'{"dag":'
    )
    raw = _raw_exchange(host, port, request, timeout=30.0)
    assert _status_and_code(raw) == (400, "truncated_body")
    _assert_recovered(service, client)


def test_malformed_request_line_closes_with_400(server, client):
    service, host, port = server
    raw = _raw_exchange(host, port, b"COMPLETE GIBBERISH\r\n\r\n")
    assert _status_and_code(raw) == (400, "invalid_request")
    _assert_recovered(service, client)


def test_chunked_transfer_encoding_rejected(server, client):
    service, host, port = server
    request = (
        b"POST /schedule HTTP/1.1\r\nHost: x\r\n"
        b"Transfer-Encoding: chunked\r\n\r\n0\r\n\r\n"
    )
    raw = _raw_exchange(host, port, request)
    assert _status_and_code(raw) == (400, "invalid_request")
    _assert_recovered(service, client)


# ----------------------------------------------------------------------
# Header smuggling: conflicting framing headers are refused, never
# reconciled.  (Regression: the parser used to let a later duplicate
# silently overwrite an earlier one — two parsers disagreeing on which
# copy wins disagree on where the message ends.)
# ----------------------------------------------------------------------


def test_duplicate_content_length_rejected(server, client):
    """Two Content-Length headers — even *agreeing* ones — are a 400."""
    service, host, port = server
    body = b'{"x":1}'
    for second in (len(body), 2):  # agreeing and smuggling variants
        request = (
            f"POST /schedule HTTP/1.1\r\nHost: x\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Content-Length: {second}\r\n"
            f"\r\n"
        ).encode() + body
        raw = _raw_exchange(host, port, request, shutdown_write=True)
        status, code = _status_and_code(raw)
        assert (status, code) == (400, "invalid_request"), raw
        payload = json.loads(raw.partition(b"\r\n\r\n")[2].decode())
        assert "duplicate content-length" in payload["error"]["message"]
    _assert_recovered(service, client)


def test_smuggled_second_content_length_never_resyncs_as_a_request(server):
    """The classic desync probe: a short second Content-Length that would
    leave attacker-controlled bytes in the buffer to be parsed as the
    *next* request.  The server must answer one 400 and close — the
    trailing bytes must never be interpreted as a pipelined request."""
    _, host, port = server
    smuggled = (
        b"GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n"
    )
    request = (
        b"POST /schedule HTTP/1.1\r\nHost: x\r\n"
        b"Content-Length: " + str(len(smuggled)).encode() + b"\r\n"
        b"Content-Length: 0\r\n"
        b"\r\n"
    ) + smuggled
    raw = _raw_exchange(host, port, request, shutdown_write=True)
    # Exactly one response came back (a 400), not a 400 + smuggled 200.
    assert raw.count(b"HTTP/1.1 ") == 1
    assert _status_and_code(raw) == (400, "invalid_request")


def test_duplicate_transfer_encoding_rejected(server, client):
    service, host, port = server
    request = (
        b"POST /schedule HTTP/1.1\r\nHost: x\r\n"
        b"Transfer-Encoding: identity\r\n"
        b"Transfer-Encoding: chunked\r\n\r\n"
    )
    raw = _raw_exchange(host, port, request)
    status, code = _status_and_code(raw)
    assert (status, code) == (400, "invalid_request")
    payload = json.loads(raw.partition(b"\r\n\r\n")[2].decode())
    assert "duplicate transfer-encoding" in payload["error"]["message"]
    _assert_recovered(service, client)


def test_transfer_encoding_alongside_content_length_rejected(server, client):
    """TE + CL in one request is the other smuggling axis: refused even
    though neither header is duplicated."""
    service, host, port = server
    body = b'{"x":1}'
    request = (
        f"POST /schedule HTTP/1.1\r\nHost: x\r\n"
        f"Content-Length: {len(body)}\r\n"
        f"Transfer-Encoding: chunked\r\n\r\n"
    ).encode() + body
    raw = _raw_exchange(host, port, request, shutdown_write=True)
    status, code = _status_and_code(raw)
    assert (status, code) == (400, "invalid_request")
    payload = json.loads(raw.partition(b"\r\n\r\n")[2].decode())
    assert "Transfer-Encoding alongside Content-Length" in (
        payload["error"]["message"]
    )
    _assert_recovered(service, client)


def test_benign_duplicate_headers_are_combined_not_rejected(server, client):
    """Non-framing duplicates (e.g. Accept) are legal HTTP: they must be
    comma-combined, not 400'd — the smuggling defense is scoped to the
    framing headers only."""
    service, host, port = server
    body = json.dumps({"dag": dag_to_json(Dag(2, [(0, 1)]))}).encode()
    request = (
        f"POST /schedule HTTP/1.1\r\nHost: x\r\n"
        f"Accept: application/json\r\n"
        f"Accept: text/plain\r\n"
        f"Content-Length: {len(body)}\r\nConnection: close\r\n\r\n"
    ).encode() + body
    raw = _raw_exchange(host, port, request)
    status, _ = _status_and_code(raw)
    assert status == 200
    _assert_recovered(service, client)


# ----------------------------------------------------------------------
# Routing
# ----------------------------------------------------------------------


@pytest.mark.parametrize(
    "path", ["/", "/schedule/extra", "/unknown", "/SCHEDULE", "/metrics2"]
)
def test_unknown_endpoints_return_404(client, path):
    response = client.request("GET", path)
    assert (response.status, response.error_code) == (404, "not_found")


@pytest.mark.parametrize(
    "method,path,allowed",
    [
        ("GET", "/schedule", "POST"),
        ("GET", "/simulate", "POST"),
        ("POST", "/healthz", "GET"),
        ("POST", "/metrics", "GET"),
        ("DELETE", "/schedule", "POST"),
    ],
)
def test_wrong_method_returns_405_with_allow(server, method, path, allowed):
    _, host, port = server
    request = (
        f"{method} {path} HTTP/1.1\r\nHost: x\r\nContent-Length: 0"
        f"\r\nConnection: close\r\n\r\n"
    ).encode()
    raw = _raw_exchange(host, port, request)
    status, code = _status_and_code(raw)
    assert (status, code) == (405, "method_not_allowed")
    head = raw.partition(b"\r\n\r\n")[0].decode().lower()
    assert f"allow: {allowed.lower()}" in head


def test_query_strings_are_ignored_for_routing(client):
    response = client.request("GET", "/healthz?probe=1")
    assert response.status == 200


# ----------------------------------------------------------------------
# Error vocabulary sanity
# ----------------------------------------------------------------------


def test_every_wire_error_code_is_documented():
    for code, status in ERROR_CODES.items():
        exc = ServeError(code, "x")
        assert exc.status == status
        assert exc.payload() == {"error": {"code": code, "message": "x"}}
    with pytest.raises(ValueError):
        ServeError("made_up_code", "x")


def test_no_traceback_ever_crosses_the_wire(server, client):
    """Abusive inputs produce only the structured error object —
    response bodies never contain a Python traceback."""
    _, host, port = server
    probes = [
        _post(host, port, "/schedule", b"\x00\xff\xfe"),
        _post(host, port, "/simulate", json.dumps(
            {"dag": {"format": "repro-dag-v1", "n": 1, "arcs": [[0, 0]]},
             "params": {"mu_bit": 1.0, "mu_bs": 1.0}}).encode()),
        _raw_exchange(host, port, b"BAD\r\n\r\n"),
    ]
    for raw in probes:
        body = raw.partition(b"\r\n\r\n")[2]
        assert b"Traceback" not in body
        assert b"repro/" not in body
        payload = json.loads(body.decode())
        assert set(payload) == {"error"}
        assert set(payload["error"]) == {"code", "message"}
