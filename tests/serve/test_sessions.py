"""The live-rescheduling endpoints over the real wire.

``POST /session`` / ``POST /advance`` / ``GET /session/{id}`` against a
real server: lifecycle, the full error vocabulary (404 unknown, 409
conflicts, 400 bad events), idempotent sequence replay byte-identity,
shard affinity of a session's whole request family, and — the chaos
contract — a SIGKILLed shard whose respawned worker answers the next
advance from the durable checkpoint exactly as an unkilled twin would.
"""

from __future__ import annotations

import json
import os
import signal
import time

import pytest

from repro.core.prio import prio_schedule
from repro.core.rescheduling import reprioritize_remnant
from repro.dag.graph import Dag
from repro.dag.io_json import dag_to_json
from repro.live.store import SessionStore, session_token
from repro.serve.app import PrioService, ServerThread
from repro.serve.client import ServeClient
from repro.serve.protocol import encode, session_payload
from repro.serve.shard import routing_key
from repro.workloads.registry import get_workload

from .conftest import make_limits

pytestmark = pytest.mark.filterwarnings(
    "ignore::pytest.PytestUnraisableExceptionWarning"
)


@pytest.fixture(scope="module")
def dag() -> Dag:
    return get_workload("airsn-small")


def by_priority(payload: dict) -> list[int]:
    prios = payload["priorities"]
    return sorted(range(len(prios)), key=lambda u: -prios[u])


# ----------------------------------------------------------------------
# Local dispatch: lifecycle and error vocabulary
# ----------------------------------------------------------------------


class TestLocalSessions:
    @pytest.fixture(scope="class")
    def server(self):
        service = PrioService(limits=make_limits())
        with ServerThread(service) as (host, port):
            yield service, host, port

    @pytest.fixture
    def client(self, server):
        _, host, port = server
        with ServeClient(host, port, timeout=30.0) as c:
            yield c

    def test_full_lifecycle(self, server, client, dag):
        service, _, _ = server
        created = client.create_session(dag, name="lifecycle")
        assert created.status == 200
        sid = created.payload["session_id"]
        assert sid == f"{session_token(dag_to_json(dag))}.lifecycle"
        assert created.payload["seq"] == 0
        assert created.payload["priorities"] == (
            prio_schedule(dag).priorities
        )
        # Create is byte-identical to the in-process payload builder.
        summary = service.dispatcher.sessions.summary(sid)
        assert created.body == encode(session_payload(summary))

        order = by_priority(created.payload)
        first = client.advance(sid, 1, [
            {"kind": "complete", "job": order[0]},
            {"kind": "fail", "job": order[1]},
        ])
        assert first.status == 200
        assert first.payload["recompute"] == "incremental"
        oracle = reprioritize_remnant(dag, {order[0]})
        got = client.get_session(sid)
        assert got.status == 200
        assert got.payload["seq"] == 1
        assert got.payload["priorities"] == oracle.priorities
        assert got.payload["remnant_fingerprint"] == (
            oracle.remnant.fingerprint()
        )
        assert got.payload["failed"] == [order[1]]

        # Failure-only batches skip recompute entirely.
        second = client.advance(
            sid, 2, [{"kind": "straggler_timeout", "job": order[1]}]
        )
        assert second.payload["recompute"] == "skipped"
        assert second.payload["changed"] == {}

    def test_idempotent_seq_replay_is_byte_identical(self, client, dag):
        sid = client.create_session(dag, name="replay").payload["session_id"]
        job = by_priority(client.get_session(sid).payload)[0]
        events = [{"kind": "complete", "job": job}]
        first = client.advance(sid, 1, events)
        assert first.status == 200
        retried = client.advance(sid, 1, events)
        assert retried.body == first.body

    def test_error_vocabulary(self, client, dag):
        sid = client.create_session(dag, name="errors").payload["session_id"]
        # Duplicate create → 409 conflict.
        dup = client.create_session(dag, name="errors")
        assert (dup.status, dup.error_code) == (409, "conflict")
        # Out-of-sequence advance → 409 conflict.
        stale = client.advance(sid, 7, [])
        assert (stale.status, stale.error_code) == (409, "conflict")
        # Unknown session → 404 on both advance and GET.
        ghost = "f" * 16 + ".ghost"
        assert client.advance(ghost, 1, []).status == 404
        missing = client.get_session(ghost)
        assert (missing.status, missing.error_code) == (404, "not_found")
        # Malformed events → 400 invalid_request, session untouched.
        bad = client.advance(sid, 1, [{"kind": "explode", "job": 0}])
        assert (bad.status, bad.error_code) == (400, "invalid_request")
        # Closure violation → 400, and the batch left no trace.
        sink = next(
            u for u in range(dag.n) if dag.is_sink(u) and dag.in_degree(u)
        )
        closure = client.advance(sid, 1, [{"kind": "complete", "job": sink}])
        assert (closure.status, closure.error_code) == (400,
                                                        "invalid_request")
        assert client.get_session(sid).payload["seq"] == 0

    def test_bad_session_requests(self, client, dag):
        wire = dag_to_json(dag)
        bad_name = client.post_json("/session", {"dag": wire, "name": "a/b"})
        assert (bad_name.status, bad_name.error_code) == (400,
                                                          "invalid_request")
        bad_mode = client.post_json(
            "/session", {"dag": wire, "name": "m", "mode": "psychic"}
        )
        assert (bad_mode.status, bad_mode.error_code) == (400,
                                                          "invalid_request")
        extra = client.post_json(
            "/session", {"dag": wire, "name": "x", "surprise": 1}
        )
        assert (extra.status, extra.error_code) == (400, "invalid_request")
        no_seq = client.post_json(
            "/advance", {"session": "f" * 16 + ".x", "events": []}
        )
        assert (no_seq.status, no_seq.error_code) == (400, "invalid_request")

    def test_full_mode_session(self, client, dag):
        created = client.create_session(dag, name="full", mode="full")
        sid = created.payload["session_id"]
        job = by_priority(created.payload)[0]
        delta = client.advance(sid, 1, [{"kind": "complete", "job": job}])
        assert delta.payload["recompute"] == "full"


# ----------------------------------------------------------------------
# Routing: one session, one shard
# ----------------------------------------------------------------------


def test_session_family_routes_identically(dag):
    wire = dag_to_json(dag)
    token = session_token(wire)
    sid = f"{token}.run"
    create = json.dumps({"dag": wire, "name": "run"}).encode()
    advance = json.dumps(
        {"session": sid, "seq": 1,
         "events": [{"kind": "complete", "job": 0}]}
    ).encode()
    keys = {
        routing_key("/session", create),
        routing_key("/advance", advance),
        routing_key(f"/session/{sid}", b""),
        routing_key(f"/session/{token}.other-name", b""),
    }
    assert keys == {b"session:" + token.encode()}


# ----------------------------------------------------------------------
# Sharded dispatch: kill a shard mid-session, recover byte-identically
# ----------------------------------------------------------------------


class TestShardedSessions:
    def test_killed_shard_recovers_session_byte_identically(
        self, tmp_path, dag
    ):
        events1 = None  # filled below; shared with the unkilled twin
        order = None

        # The unkilled twin: same dag, same events, no fault.  Its
        # advance bytes are the recovery target.
        twin = SessionStore(directory=tmp_path / "twin")
        twin_session = twin.create(dag_to_json(dag), name="chaos")
        order = sorted(
            range(dag.n), key=lambda u: -twin_session.priorities[u]
        )
        events1 = [{"kind": "complete", "job": order[0]}]
        events2 = [
            {"kind": "complete", "job": order[1]},
            {"kind": "fail", "job": order[2]},
        ]
        twin.advance(twin_session.session_id, events1, seq=1)
        expected_delta = twin.advance(
            twin_session.session_id, events2, seq=2
        )

        service = PrioService(
            limits=make_limits(), shards=2,
            session_dir=tmp_path / "shards",
        )
        with ServerThread(service) as (host, port):
            with ServeClient(host, port, timeout=60.0) as client:
                created = client.create_session(dag, name="chaos")
                assert created.status == 200
                sid = created.payload["session_id"]
                assert client.advance(sid, 1, events1).status == 200

                # SIGKILL every shard worker: whichever owns the session
                # is certainly dead.  The supervisor respawns it and the
                # worker recovers the session from the checkpoint dir.
                for handle in service.dispatcher.handles:
                    os.kill(handle.process.pid, signal.SIGKILL)
                time.sleep(0.2)

                recovered = client.advance(sid, 2, events2)
                assert recovered.status == 200, recovered.payload
                assert recovered.payload["recompute"] == "incremental"
                from repro.serve.protocol import advance_payload

                assert recovered.body == encode(
                    advance_payload(expected_delta)
                )

                after = client.get_session(sid)
                assert after.status == 200
                assert after.payload["seq"] == 2
                assert after.payload["priorities"] == (
                    twin.summary(twin_session.session_id)["priorities"]
                )
