"""The sharded serving tier: routing, bit-identity, supervision, drain.

The contract under test is the same one the local dispatcher keeps —
every response is byte-for-byte ``encode(<payload builder>(...))`` —
plus what sharding adds: deterministic consistent-hash routing by dag
identity, per-shard cache locality, respawn-on-death supervision within
the retry budget, degraded in-process fallback past it, and a drain
that flushes every worker before the process exits.
"""

from __future__ import annotations

import json
import threading
import time

import numpy as np
import pytest

from repro.dag.graph import Dag
from repro.dag.io_json import dag_to_json
from repro.perf.cache import ScheduleCache
from repro.robust.retry import RetryPolicy
from repro.serve.app import PrioService, ServerThread
from repro.serve.client import ServeClient
from repro.serve.protocol import encode, schedule_payload, simulate_payload
from repro.serve.shard import HashRing, dag_shard_key
from repro.sim.engine import SimParams
from repro.workloads.registry import get_workload

from .conftest import make_limits

pytestmark = pytest.mark.filterwarnings(
    "ignore::pytest.PytestUnraisableExceptionWarning"
)


# ----------------------------------------------------------------------
# HashRing: deterministic, balanced, stable under resizing
# ----------------------------------------------------------------------


def test_ring_is_deterministic():
    a, b = HashRing(4), HashRing(4)
    for i in range(1000):
        key = b"key-%d" % i
        assert a.lookup(key) == b.lookup(key)


def test_ring_covers_and_roughly_balances_all_shards():
    ring = HashRing(4)
    counts = [0, 0, 0, 0]
    for i in range(10_000):
        counts[ring.lookup(b"dag-%d" % i)] += 1
    # Every shard owns a material share: no dead shard, no hot spot
    # absorbing everything.  64 virtual nodes/shard keeps the spread
    # well inside 10%..45% for 4 shards.
    for count in counts:
        assert 0.10 * 10_000 < count < 0.45 * 10_000, counts


def test_ring_resize_moves_only_a_fraction_of_keys():
    before, after = HashRing(4), HashRing(5)
    keys = [b"dag-%d" % i for i in range(10_000)]
    moved = sum(1 for k in keys if before.lookup(k) != after.lookup(k))
    # Consistent hashing: adding a 5th shard should move ~1/5 of the
    # keyspace, not rehash everything.  Allow generous slack.
    assert moved < 0.40 * len(keys), moved


def test_ring_rejects_degenerate_configs():
    with pytest.raises(ValueError):
        HashRing(0)
    with pytest.raises(ValueError):
        HashRing(2, replicas=0)


# ----------------------------------------------------------------------
# Routing key: dag identity, not body bytes
# ----------------------------------------------------------------------


def test_same_dag_routes_identically_across_request_shapes():
    """Schedule and simulate requests for the same dag — different
    bodies, different key order — must produce the same routing key, so
    one shard's cache serves all of that dag's traffic."""
    dag = get_workload("airsn-small")
    wire = dag_to_json(dag)
    schedule_body = json.dumps({"dag": wire, "algorithm": "prio"}).encode()
    simulate_body = json.dumps(
        {"seed": 3, "dag": wire, "params": {"mu_bit": 1.0, "mu_bs": 16.0}}
    ).encode()
    reordered = json.dumps(
        {"algorithm": "fifo", "dag": json.loads(json.dumps(wire))}
    ).encode()
    keys = {
        dag_shard_key(schedule_body),
        dag_shard_key(simulate_body),
        dag_shard_key(reordered),
    }
    assert len(keys) == 1


def test_distinct_dags_produce_distinct_keys():
    keys = set()
    for n in range(2, 30):
        dag = Dag(n, [(i, i + 1) for i in range(n - 1)])
        body = json.dumps({"dag": dag_to_json(dag)}).encode()
        keys.add(dag_shard_key(body))
    assert len(keys) == 28


def test_unroutable_bodies_fall_back_to_raw_bytes():
    assert dag_shard_key(b"not json at all") == b"not json at all"
    assert dag_shard_key(b"[1,2,3]") == b"[1,2,3]"
    assert dag_shard_key(b'{"no_dag": 1}') == b'{"no_dag": 1}'


# ----------------------------------------------------------------------
# Bit-identity through worker processes
# ----------------------------------------------------------------------


def _sample_dags() -> dict[str, Dag]:
    rng = np.random.default_rng(7)
    return {
        "airsn": get_workload("airsn-small"),
        "chain": Dag(10, [(i, i + 1) for i in range(9)]),
        "fanout": Dag(12, [(0, i) for i in range(1, 12)]),
        "random": Dag(
            20,
            [
                (i, j)
                for i in range(20)
                for j in range(i + 1, 20)
                if rng.random() < 0.15
            ],
        ),
        "empty": Dag(0, []),
    }


@pytest.fixture(scope="module")
def sharded_server():
    service = PrioService(
        cache=ScheduleCache(),
        limits=make_limits(
            retry=RetryPolicy(max_attempts=2, base_delay=0.05, timeout=60.0)
        ),
        shards=3,
    )
    with ServerThread(service) as (host, port):
        yield service, host, port


def test_sharded_responses_byte_identical_to_library(sharded_server):
    _, host, port = sharded_server
    params = SimParams(mu_bit=1.0, mu_bs=16.0)
    with ServeClient(host, port, timeout=120.0) as client:
        for name, dag in _sample_dags().items():
            for algorithm in ("prio", "fifo", "topological"):
                response = client.schedule(dag, algorithm)
                assert response.status == 200, (name, algorithm)
                assert response.body == encode(
                    schedule_payload(dag, algorithm)
                ), (name, algorithm)
        for seed in (0, 9):
            dag = _sample_dags()["airsn"]
            response = client.simulate(dag, params, seed=seed)
            assert response.status == 200
            assert response.body == encode(
                simulate_payload(dag, params, seed, "prio", 1)
            ), seed
        batch = client.simulate(dag, params, seed=2, replications=8)
        assert batch.status == 200
        assert batch.body == encode(
            simulate_payload(dag, params, 2, "prio", 8)
        )


def test_sharded_errors_byte_identical_to_local(sharded_server):
    """Structured errors cross the process boundary unchanged — same
    code, same message, same shape as in-process dispatch."""
    _, host, port = sharded_server
    cyclic = {"dag": {"format": "repro-dag-v1", "n": 2,
                      "arcs": [[0, 1], [1, 0]]}}
    local = PrioService(cache=None, limits=make_limits())
    with ServerThread(local) as (lhost, lport):
        with ServeClient(lhost, lport) as client:
            expected = client.post_json("/schedule", cyclic)
    with ServeClient(host, port) as client:
        sharded = client.post_json("/schedule", cyclic)
    assert sharded.status == expected.status == 400
    assert sharded.body == expected.body


def test_requests_spread_across_shards_and_caches_stay_local(sharded_server):
    service, host, port = sharded_server
    dags = [Dag(n, [(i, i + 1) for i in range(n - 1)]) for n in range(2, 26)]
    owners = {
        service.dispatcher.ring.lookup(
            dag_shard_key(json.dumps({"dag": dag_to_json(d)}).encode())
        )
        for d in dags
    }
    assert owners == {0, 1, 2}  # 24 distinct dags reach every shard
    with ServeClient(host, port, timeout=120.0) as client:
        for _ in range(2):  # second pass hits each shard's own cache
            for dag in dags:
                assert client.schedule(dag).status == 200
        payload = client.metrics().payload
    shards = payload["shards"]
    assert set(shards) == {"0", "1", "2"}
    for view in shards.values():
        assert view["alive"] is True
        assert view["served"] > 0
        assert view["cache"]["hits"] > 0  # the repeat pass hit locally
    assert payload["in_flight"] == 0


# ----------------------------------------------------------------------
# Supervision: death, respawn, rebuild budget, degraded fallback
# ----------------------------------------------------------------------


def _routing_index(service, dag) -> int:
    body = json.dumps({"dag": dag_to_json(dag)}).encode()
    return service.dispatcher.ring.lookup(dag_shard_key(body))


def test_idle_shard_death_respawns_on_next_request():
    dag = get_workload("airsn-small")
    service = PrioService(
        cache=ScheduleCache(),
        limits=make_limits(
            retry=RetryPolicy(max_attempts=2, base_delay=0.05, timeout=60.0)
        ),
        shards=2,
    )
    with ServerThread(service) as (host, port):
        index = _routing_index(service, dag)
        handle = service.dispatcher.handles[index]
        with ServeClient(host, port, timeout=120.0) as client:
            assert client.schedule(dag).status == 200
            handle.process.kill()
            deadline = time.time() + 30
            while handle.alive and time.time() < deadline:
                time.sleep(0.01)
            assert not handle.alive
            response = client.schedule(dag)
            assert response.status == 200
            assert response.body == encode(schedule_payload(dag, "prio"))
            assert handle.restarts == 1
            assert handle.alive


def test_dead_shard_past_rebuild_budget_returns_bad_gateway():
    """With no retry budget and no rebuild budget... the shard cannot be
    respawned for *this* request, and the client gets the documented
    502 instead of a hang or a 500."""
    dag = get_workload("airsn-small")
    service = PrioService(
        cache=ScheduleCache(),
        limits=make_limits(
            retry=RetryPolicy(
                max_attempts=1, timeout=60.0, max_pool_rebuilds=0
            ),
        ),
        shards=2,
        stall=1.0,
    )
    with ServerThread(service) as (host, port):
        index = _routing_index(service, dag)
        handle = service.dispatcher.handles[index]
        result: dict = {}

        def issue() -> None:
            with ServeClient(host, port, timeout=120.0) as client:
                result["response"] = client.schedule(dag)

        worker = threading.Thread(target=issue)
        worker.start()
        deadline = time.time() + 30
        while not handle.pending and time.time() < deadline:
            time.sleep(0.01)
        assert handle.pending, "request never reached the shard"
        handle.process.kill()
        worker.join(timeout=120)
        response = result["response"]
        assert response.status == 502, response.body
        assert response.error_code == "bad_gateway"


def test_shard_past_rebuild_budget_degrades_to_in_process():
    """After the rebuild budget is spent the shard stops being respawned
    and its requests are served in-process — slower, never refused."""
    dag = get_workload("airsn-small")
    service = PrioService(
        cache=ScheduleCache(),
        limits=make_limits(
            retry=RetryPolicy(
                max_attempts=2, base_delay=0.05, timeout=60.0,
                max_pool_rebuilds=0,
            ),
        ),
        shards=2,
    )
    with ServerThread(service) as (host, port):
        index = _routing_index(service, dag)
        handle = service.dispatcher.handles[index]
        with ServeClient(host, port, timeout=120.0) as client:
            handle.process.kill()
            deadline = time.time() + 30
            while handle.alive and time.time() < deadline:
                time.sleep(0.01)
            response = client.schedule(dag)
            assert response.status == 200
            assert response.body == encode(schedule_payload(dag, "prio"))
            assert handle.degraded
            assert handle.restarts == 0
            payload = client.metrics().payload
            assert payload["shards"][str(index)]["degraded"] is True
            counters = payload["metrics"]["counters"]
            assert counters["serve.degraded_requests"] >= 1
            assert counters[f"serve.shard.{index}.degraded"] >= 1


# ----------------------------------------------------------------------
# Drain: every worker is flushed and joined before exit
# ----------------------------------------------------------------------


def test_sharded_drain_joins_every_worker_cleanly():
    dag = get_workload("airsn-small")
    service = PrioService(cache=ScheduleCache(), limits=make_limits(),
                          shards=3)
    with ServerThread(service) as (host, port):
        with ServeClient(host, port, timeout=60.0) as client:
            assert client.schedule(dag).status == 200
        processes = [h.process for h in service.dispatcher.handles]
        assert all(p.is_alive() for p in processes)
    # ServerThread.stop() drained: every worker exited orderly (the
    # drain sentinel, not SIGTERM/SIGKILL) and nothing was leaked.
    for process in processes:
        assert not process.is_alive()
        assert process.exitcode == 0
    for handle in service.dispatcher.handles:
        assert not handle.pending
        assert not handle.orphaned


def test_sharded_server_survives_double_stop():
    service = PrioService(limits=make_limits(), shards=2)
    st = ServerThread(service)
    st.start()
    st.stop()
    st.stop()  # idempotent
