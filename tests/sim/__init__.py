"""Test package."""
