"""Cross-validation of the simulator against closed-form regimes."""

import numpy as np
import pytest

from repro.dag.builders import chain, fork_join
from repro.sim.analytic import (
    chain_stall_probability,
    saturated_execution_time,
    saturated_utilization,
    sequential_execution_time,
)
from repro.sim.engine import SimParams, make_policy, simulate
from repro.workloads.airsn import airsn


def mean_over_seeds(dag, n_seeds=12, **params_kw):
    params = SimParams(**params_kw)
    times, stalls, utils = [], [], []
    for seed in range(n_seeds):
        rng = np.random.default_rng(seed)
        r = simulate(dag, make_policy("fifo"), params, rng)
        times.append(r.execution_time)
        stalls.append(r.stalling_probability)
        utils.append(r.utilization)
    return np.mean(times), np.mean(stalls), np.mean(utils)


class TestSequentialRegime:
    def test_chain_rare_unit_batches(self):
        d = chain(12)
        predicted = sequential_execution_time(d, mu_bit=20.0)
        measured, _, _ = mean_over_seeds(d, mu_bit=20.0, mu_bs=1.0)
        assert measured == pytest.approx(predicted, rel=0.15)

    def test_prediction_scales_with_n(self):
        assert sequential_execution_time(chain(20), 10.0) > (
            sequential_execution_time(chain(10), 10.0) * 1.8
        )

    def test_empty(self):
        from repro.dag.graph import Dag

        assert sequential_execution_time(Dag(0, []), 5.0) == 0.0


class TestSaturatedRegime:
    def test_fork_join_bfs_depth(self):
        d = fork_join(16)
        predicted = saturated_execution_time(d)  # 3 levels
        measured, _, _ = mean_over_seeds(d, mu_bit=0.01, mu_bs=64.0)
        assert measured == pytest.approx(predicted, rel=0.15)

    def test_airsn_depth(self):
        d = airsn(20)
        predicted = saturated_execution_time(d)  # 25 levels
        measured, _, _ = mean_over_seeds(
            d, n_seeds=6, mu_bit=0.01, mu_bs=256.0
        )
        assert measured == pytest.approx(predicted, rel=0.15)


class TestStallingRegime:
    @pytest.mark.parametrize("mu_bit", [0.1, 0.5, 1.0])
    def test_chain_stalls(self, mu_bit):
        predicted = chain_stall_probability(mu_bit)
        _, measured, _ = mean_over_seeds(
            chain(40), n_seeds=8, mu_bit=mu_bit, mu_bs=1.0
        )
        assert measured == pytest.approx(predicted, abs=0.08)

    def test_validation(self):
        with pytest.raises(ValueError):
            chain_stall_probability(0.0)


class TestSaturatedUtilization:
    def test_fork_join(self):
        d = fork_join(16)
        predicted = saturated_utilization(d, 256.0)
        _, _, measured = mean_over_seeds(
            d, n_seeds=10, mu_bit=10.0, mu_bs=256.0
        )
        # Geometric batch sizes vary a lot; generous tolerance.
        assert measured == pytest.approx(predicted, rel=0.5)

    def test_validation(self):
        with pytest.raises(ValueError):
            saturated_utilization(fork_join(2), 0.5)
