"""Tests for the batch arrival process."""

import numpy as np
import pytest

from repro.sim.arrivals import BATCH_SIZE_DISTRIBUTIONS, BatchArrivals


class TestBatchArrivals:
    def test_first_batch_at_time_zero(self, rng):
        arr = BatchArrivals(1.0, 4.0, rng)
        t, b = arr.next_batch()
        assert t == 0.0
        assert b >= 1

    def test_times_strictly_ordered(self, rng):
        arr = BatchArrivals(0.5, 2.0, rng)
        times = [arr.next_batch()[0] for _ in range(100)]
        assert all(t1 < t2 for t1, t2 in zip(times, times[1:]))

    def test_peek_does_not_consume(self, rng):
        arr = BatchArrivals(1.0, 2.0, rng)
        t = arr.peek_time()
        assert arr.next_batch()[0] == t

    def test_refill_across_chunks(self, rng):
        arr = BatchArrivals(1.0, 2.0, rng, chunk=8)
        times = [arr.next_batch()[0] for _ in range(30)]
        assert all(t1 < t2 for t1, t2 in zip(times, times[1:]))

    def test_geometric_mean_close(self):
        rng = np.random.default_rng(7)
        arr = BatchArrivals(1.0, 16.0, rng)
        sizes = [arr.next_batch()[1] for _ in range(20000)]
        assert np.mean(sizes) == pytest.approx(16.0, rel=0.05)
        assert min(sizes) >= 1

    def test_interarrival_mean_close(self):
        rng = np.random.default_rng(7)
        arr = BatchArrivals(3.0, 1.0, rng)
        times = np.array([arr.next_batch()[0] for _ in range(20000)])
        gaps = np.diff(times)
        assert gaps.mean() == pytest.approx(3.0, rel=0.05)

    def test_ceil_exponential_support(self):
        rng = np.random.default_rng(7)
        arr = BatchArrivals(1.0, 4.0, rng, size_dist="ceil-exponential")
        sizes = [arr.next_batch()[1] for _ in range(5000)]
        assert min(sizes) >= 1
        # mean of ceil(Exp(mu)) = 1/(1-exp(-1/mu)) ~= mu + 0.5
        assert np.mean(sizes) == pytest.approx(4.5, rel=0.08)

    def test_unit_batch_size(self):
        rng = np.random.default_rng(0)
        arr = BatchArrivals(1.0, 1.0, rng)
        assert all(arr.next_batch()[1] == 1 for _ in range(100))

    @pytest.mark.parametrize(
        "mu_bit,mu_bs", [(0.0, 2.0), (-1.0, 2.0), (1.0, 0.5)]
    )
    def test_validation(self, rng, mu_bit, mu_bs):
        with pytest.raises(ValueError):
            BatchArrivals(mu_bit, mu_bs, rng)

    def test_unknown_distribution(self, rng):
        with pytest.raises(ValueError, match="distribution"):
            BatchArrivals(1.0, 2.0, rng, size_dist="zipf")

    def test_distributions_constant(self):
        assert "geometric" in BATCH_SIZE_DISTRIBUTIONS
