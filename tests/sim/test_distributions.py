"""Statistical validation of the stochastic inputs (scipy goodness of fit).

The evaluation's credibility rests on the simulator actually drawing from
the distributions Sec. 4.1 specifies; these tests check them with
Kolmogorov–Smirnov / chi-square machinery rather than just means.
"""

import numpy as np
import pytest
from scipy import stats as sps

from repro.sim.arrivals import BatchArrivals
from repro.sim.runtime import RuntimeSampler

N = 20000


class TestInterarrivalTimes:
    @pytest.mark.parametrize("mu_bit", [0.1, 1.0, 10.0])
    def test_exponential_ks(self, mu_bit):
        rng = np.random.default_rng(42)
        arr = BatchArrivals(mu_bit, 2.0, rng)
        times = np.array([arr.next_batch()[0] for _ in range(N)])
        gaps = np.diff(times)
        result = sps.kstest(gaps, "expon", args=(0, mu_bit))
        assert result.pvalue > 0.01

    def test_memorylessness(self):
        # P(gap > s+t | gap > s) == P(gap > t) within sampling error.
        rng = np.random.default_rng(1)
        arr = BatchArrivals(1.0, 2.0, rng)
        times = np.array([arr.next_batch()[0] for _ in range(N)])
        gaps = np.diff(times)
        p_uncond = (gaps > 0.5).mean()
        tail = gaps[gaps > 1.0]
        p_cond = (tail > 1.5).mean()
        assert p_cond == pytest.approx(p_uncond, abs=0.03)


class TestBatchSizes:
    @pytest.mark.parametrize("mu_bs", [2.0, 8.0, 64.0])
    def test_geometric_chi_square(self, mu_bs):
        rng = np.random.default_rng(7)
        arr = BatchArrivals(1.0, mu_bs, rng)
        sizes = np.array([arr.next_batch()[1] for _ in range(N)])
        p = 1.0 / mu_bs
        # Bin the support; pool the tail so expected counts stay healthy.
        kmax = int(np.ceil(sps.geom.ppf(0.995, p)))
        observed = np.bincount(np.minimum(sizes, kmax + 1))[1:]
        expected = np.array(
            [sps.geom.pmf(k, p) * N for k in range(1, kmax + 1)]
            + [sps.geom.sf(kmax, p) * N]
        )
        result = sps.chisquare(
            observed, expected * observed.sum() / expected.sum()
        )
        assert result.pvalue > 0.005

    def test_geometric_variance(self):
        rng = np.random.default_rng(3)
        arr = BatchArrivals(1.0, 16.0, rng)
        sizes = np.array([arr.next_batch()[1] for _ in range(N)])
        p = 1 / 16.0
        assert sizes.var() == pytest.approx((1 - p) / p**2, rel=0.1)


class TestRuntimes:
    def test_normal_ks(self):
        rng = np.random.default_rng(11)
        sampler = RuntimeSampler(rng)
        draws = sampler.draw(N)
        result = sps.kstest(draws, "norm", args=(1.0, 0.1))
        assert result.pvalue > 0.01

    def test_independence_across_chunks(self):
        rng = np.random.default_rng(12)
        sampler = RuntimeSampler(rng, chunk=64)
        draws = sampler.draw(N)
        # Lag-1 autocorrelation of an iid stream is ~0.
        a, b = draws[:-1] - 1.0, draws[1:] - 1.0
        corr = float((a * b).mean() / (a.std() * b.std()))
        assert abs(corr) < 0.03
