"""Tests for the event-driven grid simulator."""

import numpy as np
import pytest

from repro.core.fifo import fifo_schedule
from repro.core.prio import prio_schedule
from repro.dag.builders import chain, fork_join
from repro.dag.graph import Dag
from repro.sim.compile import CompiledDag
from repro.sim.engine import SimParams, make_policy, simulate
from repro.sim.runtime import RuntimeSampler


def run(dag, kind="fifo", order=None, mu_bit=1.0, mu_bs=4.0, seed=0, **kw):
    rng = np.random.default_rng(seed)
    policy = make_policy(kind, order=order, rng=rng)
    return simulate(dag, policy, SimParams(mu_bit=mu_bit, mu_bs=mu_bs, **kw), rng)


class TestBasicExecution:
    def test_all_jobs_complete(self, diamond):
        result = run(diamond)
        assert result.n_jobs == 4
        assert result.execution_time > 0

    def test_empty_dag(self):
        result = run(Dag(0, []))
        assert result.execution_time == 0.0

    def test_single_job_takes_about_one(self):
        result = run(Dag(1, []))
        assert 0.5 < result.execution_time < 1.5

    def test_chain_time_scales_with_length(self):
        short = run(chain(3), mu_bit=0.01, mu_bs=4.0)
        long = run(chain(12), mu_bit=0.01, mu_bs=4.0)
        # A chain is inherently serial: ~1 unit per job.
        assert long.execution_time > short.execution_time + 5

    def test_deterministic_under_seed(self, diamond):
        a = run(diamond, seed=42)
        b = run(diamond, seed=42)
        assert a == b

    def test_different_seeds_differ(self):
        d = fork_join(6)
        a = run(d, seed=1)
        b = run(d, seed=2)
        assert a.execution_time != b.execution_time

    def test_accepts_compiled_dag(self, diamond):
        compiled = CompiledDag.from_dag(diamond)
        result = run(compiled)
        assert result.n_jobs == 4

    def test_zero_runtime_std(self, diamond):
        result = run(diamond, runtime_std=0.0, mu_bit=0.01)
        # Deterministic runtimes: diamond depth 3, so ~3 time units.
        assert result.execution_time == pytest.approx(3.0, abs=0.2)


class TestMetrics:
    def test_utilization_at_most_one(self, diamond):
        for seed in range(5):
            result = run(diamond, seed=seed)
            assert 0 < result.utilization <= 1.0

    def test_stalling_probability_in_unit_interval(self, diamond):
        for seed in range(5):
            result = run(diamond, seed=seed)
            assert 0.0 <= result.stalling_probability <= 1.0

    def test_chain_with_huge_batches_wastes_workers(self):
        # Batch of ~256 workers for a 6-job chain: utilization tiny.
        result = run(chain(6), mu_bs=256.0)
        assert result.utilization < 0.2

    def test_rare_batches_rarely_stall_on_chain(self):
        # Batches ~10 time units apart vs ~1-unit jobs: a batch stalls only
        # when its exponential gap lands under the running job's remainder
        # (probability ~ 1 - e^(-1/10) ~= 0.1).
        result = run(chain(30), mu_bit=10.0, mu_bs=1.0)
        assert result.stalling_probability < 0.4

    def test_frequent_batches_stall_on_chain(self):
        # Batches every 0.01 time units but each job takes ~1: most batches
        # find the single eligible job already assigned.
        result = run(chain(5), mu_bit=0.01, mu_bs=1.0)
        assert result.stalling_probability > 0.8

    def test_requests_counted_until_last_assignment(self, diamond):
        result = run(diamond)
        assert result.requests_until_last_assignment >= result.n_jobs
        assert result.batches_until_last_assignment >= 1

    def test_zero_metrics_properties(self):
        from repro.sim.engine import SimResult

        r = SimResult(0.0, 0, 0, 0, 0)
        assert r.stalling_probability == 0.0
        assert r.utilization == 0.0


class TestPolicyEffects:
    def test_prio_beats_fifo_on_airsn_like(self):
        from repro.workloads.airsn import airsn

        d = airsn(width=30)
        order = prio_schedule(d).schedule
        prio_times = []
        fifo_times = []
        for seed in range(12):
            prio_times.append(
                run(d, "oblivious", order=order, mu_bit=1.0, mu_bs=8.0, seed=seed).execution_time
            )
            fifo_times.append(
                run(d, "fifo", mu_bit=1.0, mu_bs=8.0, seed=seed).execution_time
            )
        assert np.mean(prio_times) < np.mean(fifo_times)

    def test_oblivious_with_fifo_order_equals_fifo_on_chain(self):
        # On a chain every policy is forced into the same order.
        d = chain(5)
        a = run(d, "oblivious", order=fifo_schedule(d), seed=3)
        b = run(d, "fifo", seed=3)
        assert a.execution_time == b.execution_time

    def test_random_policy_runs(self, diamond):
        result = run(diamond, "random")
        assert result.n_jobs == 4

    def test_make_policy_validation(self):
        with pytest.raises(ValueError, match="order"):
            make_policy("oblivious")
        with pytest.raises(ValueError, match="rng"):
            make_policy("random")
        with pytest.raises(ValueError, match="unknown"):
            make_policy("lifo")


class TestRuntimeSampler:
    def test_mean_and_std(self):
        rng = np.random.default_rng(0)
        s = RuntimeSampler(rng)
        draws = s.draw(20000)
        assert draws.mean() == pytest.approx(1.0, abs=0.01)
        assert draws.std() == pytest.approx(0.1, abs=0.01)

    def test_all_positive(self):
        rng = np.random.default_rng(0)
        s = RuntimeSampler(rng, mean=0.01, std=1.0)
        assert (s.draw(10000) >= RuntimeSampler.FLOOR).all()

    def test_draw_one(self):
        s = RuntimeSampler(np.random.default_rng(0))
        assert isinstance(s.draw_one(), float)

    def test_zero_std_constant(self):
        s = RuntimeSampler(np.random.default_rng(0), std=0.0)
        assert (s.draw(10) == 1.0).all()

    def test_validation(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            RuntimeSampler(rng, mean=0.0)
        with pytest.raises(ValueError):
            RuntimeSampler(rng, std=-1.0)

    def test_large_draw_spans_chunks(self):
        s = RuntimeSampler(np.random.default_rng(0), chunk=16)
        assert s.draw(100).shape == (100,)


class TestCompiledDag:
    def test_adjacency_matches(self, fig3_dag):
        c = CompiledDag.from_dag(fig3_dag)
        lists = c.child_lists()
        for u in range(fig3_dag.n):
            assert lists[u] == list(fig3_dag.children(u))
        assert c.indegree.tolist() == [
            fig3_dag.in_degree(u) for u in range(fig3_dag.n)
        ]


class TestSimParamsValidation:
    """Regression: invalid runtime/arrival parameters used to be accepted
    at construction and only blow up (or silently misbehave) deep inside a
    run — or inside a worker process under ``jobs=N``."""

    def test_valid_defaults_accepted(self):
        SimParams(mu_bit=1.0, mu_bs=1.0)

    @pytest.mark.parametrize(
        "kwargs,match",
        [
            (dict(mu_bit=0.0, mu_bs=4.0), "mu_bit"),
            (dict(mu_bit=-1.0, mu_bs=4.0), "mu_bit"),
            (dict(mu_bit=1.0, mu_bs=0.5), "mu_bs"),
            (dict(mu_bit=1.0, mu_bs=4.0, runtime_mean=0.0), "runtime_mean"),
            (dict(mu_bit=1.0, mu_bs=4.0, runtime_mean=-2.0), "runtime_mean"),
            (dict(mu_bit=1.0, mu_bs=4.0, runtime_std=-0.1), "runtime_std"),
        ],
    )
    def test_invalid_parameters_rejected(self, kwargs, match):
        with pytest.raises(ValueError, match=match):
            SimParams(**kwargs)

    def test_zero_runtime_std_still_allowed(self):
        SimParams(mu_bit=1.0, mu_bs=4.0, runtime_std=0.0)
