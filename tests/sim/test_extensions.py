"""Tests for the extended grid model: churn, rollover, traces.

These model features are the ones the paper's Sec. 4.1 scopes out and its
conclusions call for ("a more comprehensive model that explicitly models a
worker temporarily quitting the computation ... is beyond the scope of
this paper").
"""

import numpy as np
import pytest

from repro.core.prio import prio_schedule
from repro.dag.builders import chain, fork_join
from repro.dag.graph import Dag
from repro.sim.engine import SimParams, make_policy, simulate
from repro.sim.trace import ExecutionTrace
from repro.workloads.airsn import airsn


def run(dag, kind="fifo", order=None, seed=0, trace=None, **params_kw):
    rng = np.random.default_rng(seed)
    policy = make_policy(kind, order=order, rng=rng)
    params = SimParams(**{"mu_bit": 1.0, "mu_bs": 4.0, **params_kw})
    return simulate(dag, policy, params, rng, trace=trace)


class TestWorkerChurn:
    def test_all_jobs_still_complete(self):
        result = run(fork_join(8), failure_prob=0.3, seed=1)
        assert result.n_jobs == 10
        assert result.n_failures > 0

    def test_failures_zero_by_default(self, diamond):
        assert run(diamond).n_failures == 0

    def test_churn_slows_execution(self):
        d = fork_join(20)
        clean = np.mean([run(d, seed=s).execution_time for s in range(8)])
        churned = np.mean(
            [
                run(d, failure_prob=0.4, seed=s).execution_time
                for s in range(8)
            ]
        )
        assert churned > clean

    def test_heavy_churn_on_chain(self):
        # Serial chain with 50% churn: every job is retried ~once.
        result = run(chain(10), failure_prob=0.5, seed=3)
        assert result.n_failures >= 3
        assert result.execution_time > 10

    def test_failure_count_deterministic(self):
        a = run(fork_join(10), failure_prob=0.25, seed=9)
        b = run(fork_join(10), failure_prob=0.25, seed=9)
        assert a == b

    def test_validation(self):
        with pytest.raises(ValueError, match="failure_prob"):
            SimParams(mu_bit=1.0, mu_bs=1.0, failure_prob=1.0)
        with pytest.raises(ValueError, match="fraction"):
            SimParams(mu_bit=1.0, mu_bs=1.0, failure_time_fraction=0.0)

    def test_requests_still_counted_to_last_assignment(self):
        result = run(fork_join(8), failure_prob=0.3, seed=2)
        # With retries the denominator can only grow.
        assert result.requests_until_last_assignment >= result.n_jobs


class TestStragglers:
    def test_stragglers_zero_by_default(self, diamond):
        assert run(diamond).n_stragglers == 0

    def test_stragglers_counted_and_deterministic(self):
        a = run(fork_join(12), straggler_prob=0.5, seed=5)
        b = run(fork_join(12), straggler_prob=0.5, seed=5)
        assert a == b
        assert a.n_stragglers > 0
        assert a.n_jobs == 14

    def test_stragglers_slow_execution(self):
        d = fork_join(20)
        clean = np.mean([run(d, seed=s).execution_time for s in range(8)])
        slowed = np.mean(
            [
                run(d, straggler_prob=0.3, straggler_factor=20.0,
                    seed=s).execution_time
                for s in range(8)
            ]
        )
        assert slowed > clean

    def test_injection_is_rng_neutral_when_off(self):
        """straggler_prob=0 must not perturb the draw stream: results
        with the feature compiled in but disabled are byte-identical to
        the historical engine (the same contract failure_prob keeps)."""
        explicit = run(fork_join(10), failure_prob=0.2, seed=4,
                       straggler_prob=0.0)
        implicit = run(fork_join(10), failure_prob=0.2, seed=4)
        assert explicit == implicit

    def test_composes_with_churn(self):
        result = run(
            chain(8), failure_prob=0.4, straggler_prob=0.4, seed=6
        )
        assert result.n_failures > 0
        assert result.n_stragglers > 0

    def test_validation(self):
        with pytest.raises(ValueError, match="straggler_prob"):
            SimParams(mu_bit=1.0, mu_bs=1.0, straggler_prob=1.0)
        with pytest.raises(ValueError, match="straggler_factor"):
            SimParams(mu_bit=1.0, mu_bs=1.0, straggler_factor=0.5)

    def test_kernel_refuses_straggler_injection(self, diamond):
        rng = np.random.default_rng(0)
        params = SimParams(mu_bit=1.0, mu_bs=4.0, straggler_prob=0.3)
        with pytest.raises(ValueError, match="straggler"):
            simulate(diamond, make_policy("fifo"), params, rng, kernel=True)


class TestRollover:
    def test_rollover_never_slower(self):
        # Waiting workers can only help relative to losing them.
        d = airsn(15)
        lost = np.mean(
            [run(d, mu_bit=2.0, mu_bs=4.0, seed=s).execution_time for s in range(8)]
        )
        kept = np.mean(
            [
                run(d, mu_bit=2.0, mu_bs=4.0, rollover=True, seed=s).execution_time
                for s in range(8)
            ]
        )
        assert kept <= lost * 1.02

    def test_rollover_serves_at_completions(self):
        # A chain with rare huge batches: rolled-over workers pick each
        # next job up immediately at the previous completion, so the chain
        # needs only ~1 batch.
        result = run(
            chain(6), mu_bit=100.0, mu_bs=64.0, rollover=True, seed=0
        )
        assert result.execution_time < 10.0
        without = run(chain(6), mu_bit=100.0, mu_bs=64.0, seed=0)
        assert without.execution_time > result.execution_time

    def test_rollover_with_churn(self):
        result = run(
            fork_join(10), failure_prob=0.3, rollover=True, seed=4
        )
        assert result.n_jobs == 12
        assert result.n_failures > 0


class TestExecutionTrace:
    def test_records_events(self, diamond):
        trace = ExecutionTrace()
        run(diamond, trace=trace)
        assert len(trace) > 0
        assert trace.times.shape == trace.eligible.shape

    def test_times_non_decreasing(self):
        trace = ExecutionTrace()
        run(airsn(10), trace=trace)
        assert (np.diff(trace.times) >= 0).all()

    def test_executed_monotone_and_complete(self):
        d = airsn(10)
        trace = ExecutionTrace()
        run(d, trace=trace)
        assert (np.diff(trace.executed) >= 0).all()
        assert trace.executed[-1] == d.n

    def test_prio_keeps_bigger_pool_than_fifo(self):
        # The paper's core intuition, observed live in the simulator.  In
        # the theory a job stays *eligible* until its result returns, so
        # the theory's pool is eligible-unassigned + running; PRIO should
        # keep that pool (equivalently, achieved parallelism) higher.
        d = airsn(40)
        order = prio_schedule(d).schedule
        pool = {}
        for name, kind, o in [("prio", "oblivious", order), ("fifo", "fifo", None)]:
            means = []
            for seed in range(10):
                trace = ExecutionTrace()
                run(d, kind, order=o, mu_bit=1.0, mu_bs=4.0, seed=seed, trace=trace)
                means.append(
                    trace.time_average("eligible")
                    + trace.time_average("running")
                )
            pool[name] = np.mean(means)
        assert pool["prio"] > pool["fifo"]

    def test_wasted_counts_unserved(self):
        trace = ExecutionTrace()
        run(chain(3), mu_bs=512.0, trace=trace)
        assert trace.wasted[-1] > 0

    def test_time_average_weighted(self):
        trace = ExecutionTrace()
        trace.record(0.0, 10, 0, 0, 0)
        trace.record(9.0, 0, 0, 0, 0)
        trace.record(10.0, 100, 0, 0, 0)
        assert trace.time_average("eligible") == pytest.approx(9.0)

    def test_peak_and_series_validation(self):
        trace = ExecutionTrace()
        trace.record(0.0, 3, 1, 0, 0)
        assert trace.peak("eligible") == 3
        with pytest.raises(KeyError):
            trace.series("latency")

    def test_empty_trace(self):
        trace = ExecutionTrace()
        assert trace.time_average("eligible") == 0.0
        assert trace.peak("running") == 0

    def test_starts_with_pre_assignment_snapshot(self):
        # Regression: the t=0 pre-assignment state used to be dropped, so
        # a trace never showed the initial eligible pool (all sources) and
        # peak("eligible") missed dags whose source count exceeds the
        # first batch.
        d = fork_join(8)  # 1 source fans out to 8, joined by 1 sink
        trace = ExecutionTrace()
        run(d, trace=trace)
        assert trace.times[0] == 0.0
        assert trace.eligible[0] == 1  # the single source, nothing assigned
        assert trace.running[0] == 0
        assert trace.executed[0] == 0

    def test_initial_snapshot_captures_wide_source_layer(self):
        # 30 sources, one sink: with small batches the first *recorded*
        # post-assignment state already has most sources assigned, so only
        # the pre-assignment snapshot exhibits the full pool.
        d = Dag(31, [(i, 30) for i in range(30)])
        trace = ExecutionTrace()
        run(d, mu_bs=1.0, seed=0, trace=trace)
        assert trace.eligible[0] == 30
        assert trace.peak("eligible") == 30

    def test_time_average_single_instant_uses_last_value(self):
        # Degenerate trace spanning zero time: the state at that single
        # instant is the last recorded value — not an unweighted mean of
        # everything that was ever recorded there.
        trace = ExecutionTrace()
        trace.record(5.0, 10, 0, 0, 0)
        trace.record(5.0, 2, 0, 0, 0)
        assert trace.time_average("eligible") == 2.0

    def test_time_average_single_sample(self):
        trace = ExecutionTrace()
        trace.record(3.0, 7, 0, 0, 0)
        assert trace.time_average("eligible") == 7.0

    def test_final_sample_carries_no_weight(self):
        # values[i] holds on [times[i], times[i+1]); the last sample is an
        # instant at the right edge.
        trace = ExecutionTrace()
        trace.record(0.0, 4, 0, 0, 0)
        trace.record(2.0, 1000, 0, 0, 0)
        assert trace.time_average("eligible") == 4.0


class TestRolloverTraceAndAccounting:
    def test_waiting_series_recorded_in_rollover_mode(self):
        # Regression: rollover mode never exposed the waiting pool, so the
        # trace showed wasted == 0 *and* no waiting workers — the unserved
        # requests simply vanished from observability.
        trace = ExecutionTrace()
        run(chain(6), mu_bit=100.0, mu_bs=64.0, rollover=True, seed=0,
            trace=trace)
        assert trace.waiting.max() > 0
        assert trace.wasted[-1] == 0  # rollover loses nobody

    def test_wasted_zero_only_under_rollover(self):
        kept = ExecutionTrace()
        run(chain(3), mu_bs=512.0, rollover=True, seed=1, trace=kept)
        lost = ExecutionTrace()
        run(chain(3), mu_bs=512.0, seed=1, trace=lost)
        assert kept.wasted[-1] == 0
        assert lost.wasted[-1] > 0

    def test_unserved_workers_surfaced_on_result(self):
        # A chain with huge batches: nearly the whole first batch queues
        # and is still waiting when the last job completes.
        result = run(chain(4), mu_bit=100.0, mu_bs=256.0, rollover=True,
                     seed=2)
        assert result.unserved_workers > 0

    def test_unserved_workers_zero_without_rollover(self, diamond):
        assert run(diamond, mu_bs=512.0).unserved_workers == 0

    def test_rollover_request_audit_closes(self):
        # requests = executed + wasted + still-waiting: with rollover no
        # request is lost, so the audit closes exactly when the final
        # waiting pool is surfaced.
        trace = ExecutionTrace()
        result = run(chain(5), mu_bit=50.0, mu_bs=128.0, rollover=True,
                     seed=3, trace=trace)
        # Requests counted to the last *assignment*; after it no batch is
        # taken (the chain finishes on completions), so the audit holds at
        # the snapshot.
        assert result.requests_until_last_assignment == (
            result.n_jobs + trace.wasted[-1] + result.unserved_workers
        )

    def test_waiting_default_zero_in_plain_model(self, diamond):
        trace = ExecutionTrace()
        run(diamond, trace=trace)
        assert (trace.waiting == 0).all()
