"""Feature-combination matrix: extensions composed together.

Each extension is tested alone elsewhere; these tests pin the pairwise
combinations (churn x rollover, churn x heterogeneous runtimes, traces
under everything) and the semantic identities that must hold across them.
"""

import numpy as np
import pytest

from repro.dag.builders import chain, fork_join
from repro.sim.engine import SimParams, make_policy, simulate
from repro.sim.trace import ExecutionTrace
from repro.workloads.airsn import airsn
from repro.workloads.runtimes import workload_runtime_scale


def run(dag, seed=0, trace=None, runtime_scale=None, **kw):
    rng = np.random.default_rng(seed)
    params = SimParams(**{"mu_bit": 1.0, "mu_bs": 4.0, **kw})
    return simulate(
        dag,
        make_policy("fifo"),
        params,
        rng,
        trace=trace,
        runtime_scale=runtime_scale,
    )


class TestCombinations:
    @pytest.mark.parametrize("failure_prob", [0.0, 0.2])
    @pytest.mark.parametrize("rollover", [False, True])
    def test_churn_x_rollover(self, failure_prob, rollover):
        d = fork_join(12)
        result = run(d, failure_prob=failure_prob, rollover=rollover, seed=3)
        assert result.n_jobs == d.n
        if failure_prob == 0.0:
            assert result.n_failures == 0

    def test_churn_x_heterogeneous_runtimes(self):
        d = airsn(10)
        scale = workload_runtime_scale(d, "airsn")
        result = run(d, failure_prob=0.25, runtime_scale=scale, seed=4)
        assert result.n_jobs == d.n
        assert result.execution_time > 0

    def test_trace_under_everything(self):
        d = airsn(8)
        trace = ExecutionTrace()
        scale = workload_runtime_scale(d, "airsn")
        result = run(
            d,
            failure_prob=0.2,
            rollover=True,
            runtime_scale=scale,
            trace=trace,
            seed=5,
        )
        assert len(trace) > 0
        assert trace.executed[-1] == d.n
        assert (np.diff(trace.times) >= 0).all()

    def test_rollover_x_heterogeneous(self):
        d = chain(8)
        scale = np.linspace(0.5, 2.0, d.n)
        with_roll = run(d, rollover=True, runtime_scale=scale, seed=6)
        without = run(d, rollover=False, runtime_scale=scale, seed=6)
        assert with_roll.execution_time <= without.execution_time * 1.01


class TestSemanticIdentities:
    def test_scale_of_ones_is_identity(self):
        d = airsn(10)
        base = run(d, seed=7)
        scaled = run(d, runtime_scale=np.ones(d.n), seed=7)
        assert base == scaled

    def test_failure_time_fraction_only_matters_with_churn(self):
        d = fork_join(8)
        a = run(d, failure_time_fraction=0.2, seed=8)
        b = run(d, failure_time_fraction=0.9, seed=8)
        assert a == b  # failure_prob = 0: the fraction is inert

    def test_makespan_is_max_completion(self):
        d = airsn(12)
        trace = ExecutionTrace()
        result = run(d, trace=trace, seed=9)
        assert result.execution_time == pytest.approx(trace.times[-1], abs=1e-9)

    def test_uniform_scale_rescales_time(self):
        # Doubling every runtime with instant workers doubles the makespan.
        d = chain(6)
        base = run(d, mu_bit=0.001, mu_bs=4.0, seed=10)
        doubled = run(
            d,
            mu_bit=0.001,
            mu_bs=4.0,
            runtime_scale=np.full(d.n, 2.0),
            seed=10,
        )
        assert doubled.execution_time == pytest.approx(
            2 * base.execution_time, rel=0.02
        )
