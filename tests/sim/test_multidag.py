"""Tests for the shared (multi-user) simulation."""

import numpy as np
import pytest

from repro.core.prio import prio_schedule
from repro.dag.builders import chain, fork_join
from repro.sim.engine import SimParams, make_policy
from repro.sim.multidag import simulate_shared
from repro.workloads.airsn import airsn


def params(**kw):
    return SimParams(**{"mu_bit": 1.0, "mu_bs": 8.0, **kw})


def run(dags, kinds_orders, seed=0, **params_kw):
    rng = np.random.default_rng(seed)
    policies = [
        make_policy(kind, order=order, rng=rng) for kind, order in kinds_orders
    ]
    return simulate_shared(dags, policies, params(**params_kw), rng)


class TestBasics:
    def test_all_users_finish(self):
        result = run(
            [fork_join(4), chain(3)],
            [("fifo", None), ("fifo", None)],
        )
        assert result.users[0].n_jobs == 6
        assert result.users[1].n_jobs == 3
        assert all(u.completion_time > 0 for u in result.users)
        assert result.makespan == max(u.completion_time for u in result.users)

    def test_single_user_works(self):
        result = run([chain(4)], [("fifo", None)])
        assert result.users[0].completion_time > 3

    def test_deterministic(self):
        a = run([fork_join(5), chain(4)], [("fifo", None), ("fifo", None)], seed=3)
        b = run([fork_join(5), chain(4)], [("fifo", None), ("fifo", None)], seed=3)
        assert a == b

    def test_validation(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError, match="one policy per dag"):
            simulate_shared([chain(2)], [], params(), rng)
        with pytest.raises(ValueError, match="basic model"):
            run([chain(2)], [("fifo", None)], failure_prob=0.5)


class TestContention:
    def test_contention_slows_both(self):
        d1, d2 = fork_join(10), fork_join(10)
        alone = run([d1], [("fifo", None)], seed=5, mu_bs=4.0)
        shared = run(
            [d1, d2], [("fifo", None), ("fifo", None)], seed=5, mu_bs=4.0
        )
        assert (
            shared.users[0].completion_time >= alone.users[0].completion_time
        )

    def test_round_robin_is_roughly_fair(self):
        # Two identical dags with identical policies finish close together.
        d = fork_join(20)
        times = []
        for seed in range(6):
            result = run(
                [d, d], [("fifo", None), ("fifo", None)], seed=seed, mu_bs=4.0
            )
            times.append(
                result.users[0].completion_time
                - result.users[1].completion_time
            )
        assert abs(np.mean(times)) < 3.0

    def test_prio_still_helps_under_contention(self):
        """Prioritizing my dag helps even with a FIFO competitor."""
        mine = airsn(25)
        competitor = fork_join(40)
        order = prio_schedule(mine).schedule
        prio_t, fifo_t = [], []
        for seed in range(12):
            with_prio = run(
                [mine, competitor],
                [("oblivious", order), ("fifo", None)],
                seed=seed,
                mu_bs=6.0,
            )
            with_fifo = run(
                [mine, competitor],
                [("fifo", None), ("fifo", None)],
                seed=seed,
                mu_bs=6.0,
            )
            prio_t.append(with_prio.users[0].completion_time)
            fifo_t.append(with_fifo.users[0].completion_time)
        assert np.mean(prio_t) < np.mean(fifo_t)
