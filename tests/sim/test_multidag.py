"""Tests for the shared (multi-user) simulation."""

import numpy as np
import pytest

from repro.core.prio import prio_schedule
from repro.dag.builders import chain, fork_join
from repro.sim.engine import SimParams, make_policy
from repro.sim.multidag import simulate_shared
from repro.workloads.airsn import airsn


def params(**kw):
    return SimParams(**{"mu_bit": 1.0, "mu_bs": 8.0, **kw})


def run(dags, kinds_orders, seed=0, **params_kw):
    rng = np.random.default_rng(seed)
    policies = [
        make_policy(kind, order=order, rng=rng) for kind, order in kinds_orders
    ]
    return simulate_shared(dags, policies, params(**params_kw), rng)


class TestBasics:
    def test_all_users_finish(self):
        result = run(
            [fork_join(4), chain(3)],
            [("fifo", None), ("fifo", None)],
        )
        assert result.users[0].n_jobs == 6
        assert result.users[1].n_jobs == 3
        assert all(u.completion_time > 0 for u in result.users)
        assert result.makespan == max(u.completion_time for u in result.users)

    def test_single_user_works(self):
        result = run([chain(4)], [("fifo", None)])
        assert result.users[0].completion_time > 3

    def test_deterministic(self):
        a = run([fork_join(5), chain(4)], [("fifo", None), ("fifo", None)], seed=3)
        b = run([fork_join(5), chain(4)], [("fifo", None), ("fifo", None)], seed=3)
        assert a == b

    def test_validation(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError, match="one policy per dag"):
            simulate_shared([chain(2)], [], params(), rng)
        with pytest.raises(ValueError, match="basic model"):
            run([chain(2)], [("fifo", None)], failure_prob=0.5)


class TestContention:
    def test_contention_slows_both(self):
        d1, d2 = fork_join(10), fork_join(10)
        alone = run([d1], [("fifo", None)], seed=5, mu_bs=4.0)
        shared = run(
            [d1, d2], [("fifo", None), ("fifo", None)], seed=5, mu_bs=4.0
        )
        assert (
            shared.users[0].completion_time >= alone.users[0].completion_time
        )

    def test_round_robin_is_roughly_fair(self):
        # Two identical dags with identical policies finish close together.
        d = fork_join(20)
        times = []
        for seed in range(6):
            result = run(
                [d, d], [("fifo", None), ("fifo", None)], seed=seed, mu_bs=4.0
            )
            times.append(
                result.users[0].completion_time
                - result.users[1].completion_time
            )
        assert abs(np.mean(times)) < 3.0

    def test_prio_still_helps_under_contention(self):
        """Prioritizing my dag helps even with a FIFO competitor."""
        mine = airsn(25)
        competitor = fork_join(40)
        order = prio_schedule(mine).schedule
        prio_t, fifo_t = [], []
        for seed in range(12):
            with_prio = run(
                [mine, competitor],
                [("oblivious", order), ("fifo", None)],
                seed=seed,
                mu_bs=6.0,
            )
            with_fifo = run(
                [mine, competitor],
                [("fifo", None), ("fifo", None)],
                seed=seed,
                mu_bs=6.0,
            )
            prio_t.append(with_prio.users[0].completion_time)
            fifo_t.append(with_fifo.users[0].completion_time)
        assert np.mean(prio_t) < np.mean(fifo_t)


class TestRoundRobinCursor:
    """Regression: the round-robin cursor used to advance by only one per
    rotation, so a batch exhausted mid-rotation restarted service near the
    low-indexed users instead of one past the last user served."""

    @staticmethod
    def queues(k, jobs_each):
        from repro.sim.policies import FifoPolicy

        policies = []
        for user in range(k):
            p = FifoPolicy()
            for j in range(jobs_each):
                p.push(j)
            policies.append(p)
        return policies

    def test_cursor_resumes_one_past_last_served(self):
        from repro.sim.multidag import _round_robin_serve

        policies = self.queues(3, jobs_each=10)
        order = []
        serve = lambda user, job: order.append(user)
        served, cursor = _round_robin_serve(policies, 2, 0, serve)
        assert served == 2 and order == [0, 1]
        assert cursor == 2  # one past user 1, not cursor+1 == 1
        served, cursor = _round_robin_serve(policies, 2, cursor, serve)
        assert order == [0, 1, 2, 0] and cursor == 1

    def test_successive_batches_cover_users_evenly(self):
        from repro.sim.multidag import _round_robin_serve

        policies = self.queues(3, jobs_each=30)
        counts = [0, 0, 0]
        cursor = 0
        for _ in range(15):  # 15 batches of 2 over 3 users
            _, cursor = _round_robin_serve(
                policies, 2, cursor, lambda u, j: counts.__setitem__(
                    u, counts[u] + 1
                )
            )
        assert counts == [10, 10, 10]

    def test_multi_rotation_batch(self):
        from repro.sim.multidag import _round_robin_serve

        policies = self.queues(3, jobs_each=10)
        order = []
        served, cursor = _round_robin_serve(
            policies, 4, 0, lambda u, j: order.append(u)
        )
        assert served == 4 and order == [0, 1, 2, 0]
        assert cursor == 1

    def test_skips_empty_users_and_stops_when_dry(self):
        from repro.sim.multidag import _round_robin_serve

        policies = self.queues(3, jobs_each=1)
        order = []
        served, cursor = _round_robin_serve(
            policies, 10, 1, lambda u, j: order.append(u)
        )
        assert served == 3 and order == [1, 2, 0]
        assert cursor == 1  # one past user 0
        served, cursor = _round_robin_serve(
            policies, 5, cursor, lambda u, j: order.append(u)
        )
        assert served == 0 and cursor == 1  # nobody eligible: unchanged
