"""Tests for the parallel replication executor and its determinism.

The load-bearing guarantee: for a fixed root seed, ``jobs=1`` and
``jobs=N`` produce bit-identical :class:`MetricArrays` — parallelism is an
execution detail, never an experimental condition.
"""

import numpy as np
import pickle
import pytest

from repro.analysis.calibrate import calibrate_cell
from repro.analysis.league import Entrant, league
from repro.analysis.sweep import SweepConfig, ratio_sweep
from repro.core.prio import prio_schedule
from repro.dag.builders import fork_join
from repro.sim.engine import SimParams
from repro.sim.parallel import ParallelConfig, clone_seedseq
from repro.sim.replication import policy_factory, run_replications
from repro.workloads.airsn import airsn


@pytest.fixture
def params():
    return SimParams(mu_bit=1.0, mu_bs=4.0)


def metrics_equal(a, b):
    return (
        np.array_equal(a.execution_time, b.execution_time)
        and np.array_equal(a.stalling_probability, b.stalling_probability)
        and np.array_equal(a.utilization, b.utilization)
    )


class TestParallelConfig:
    def test_defaults_are_serial(self):
        cfg = ParallelConfig()
        assert cfg.jobs == 1 and not cfg.enabled

    def test_validation(self):
        with pytest.raises(ValueError, match="jobs"):
            ParallelConfig(jobs=0)
        with pytest.raises(ValueError, match="chunk_size"):
            ParallelConfig(jobs=2, chunk_size=0)

    def test_chunking_covers_all_entries_in_order(self):
        cfg = ParallelConfig(jobs=3, chunk_size=4)
        entries = list(range(10))
        chunks = cfg.chunked(entries)
        assert chunks == [[0, 1, 2, 3], [4, 5, 6, 7], [8, 9]]

    def test_automatic_chunk_size(self):
        cfg = ParallelConfig(jobs=4)
        # Roughly a few chunks per worker, never zero-sized.
        assert cfg.resolve_chunk_size(100) >= 1
        assert cfg.resolve_chunk_size(1) == 1

    def test_clone_seedseq_spawns_identical_children(self):
        seq = np.random.SeedSequence(99).spawn(3)[1]
        seq.spawn(5)  # advance the original's spawn state
        clone = clone_seedseq(seq)
        fresh = np.random.SeedSequence(99).spawn(3)[1]
        assert [c.spawn_key for c in clone.spawn(2)] == [
            c.spawn_key for c in fresh.spawn(2)
        ]


class TestPolicyFactoryPickling:
    def test_factories_survive_pickling(self):
        for kind, order in (
            ("fifo", None),
            ("oblivious", [2, 0, 1]),
            ("random", None),
        ):
            factory = policy_factory(kind, order=order)
            clone = pickle.loads(pickle.dumps(factory))
            rng = np.random.default_rng(0)
            assert type(clone(rng)) is type(factory(np.random.default_rng(0)))


class TestRunReplicationsParallel:
    @pytest.mark.parametrize("jobs", [2, 3, 4])
    @pytest.mark.parametrize(
        "kind,order",
        [("fifo", None), ("oblivious", "identity"), ("random", None)],
    )
    def test_bit_identical_to_serial(self, params, jobs, kind, order):
        dag = fork_join(8)
        if order == "identity":
            order = list(range(dag.n))
        factory = policy_factory(kind, order=order)
        serial = run_replications(dag, factory, params, 13, seed=42)
        parallel = run_replications(dag, factory, params, 13, seed=42, jobs=jobs)
        assert metrics_equal(serial, parallel)

    def test_chunk_size_does_not_change_results(self, params):
        dag = fork_join(6)
        factory = policy_factory("fifo")
        serial = run_replications(dag, factory, params, 9, seed=5)
        for chunk_size in (1, 2, 9):
            parallel = run_replications(
                dag,
                factory,
                params,
                9,
                seed=5,
                parallel=ParallelConfig(jobs=2, chunk_size=chunk_size),
            )
            assert metrics_equal(serial, parallel)

    def test_explicit_parallel_config_wins_over_jobs(self, params):
        dag = fork_join(4)
        factory = policy_factory("fifo")
        serial = run_replications(dag, factory, params, 4, seed=3)
        forced_serial = run_replications(
            dag, factory, params, 4, seed=3, jobs=8, parallel=ParallelConfig()
        )
        assert metrics_equal(serial, forced_serial)

    def test_single_replication_stays_serial(self, params):
        dag = fork_join(3)
        factory = policy_factory("fifo")
        a = run_replications(dag, factory, params, 1, seed=1)
        b = run_replications(dag, factory, params, 1, seed=1, jobs=4)
        assert metrics_equal(a, b)


class TestAnalysisParallel:
    @pytest.fixture(scope="class")
    def workload(self):
        dag = airsn(10)
        return dag, prio_schedule(dag).schedule

    def test_sweep_bit_identical_and_row_major(self, workload):
        dag, order = workload
        cfg = SweepConfig(mu_bits=(1.0,), mu_bss=(2.0, 8.0), p=4, q=2, seed=7)
        serial = ratio_sweep(dag, order, cfg, "x")
        parallel = ratio_sweep(dag, order, cfg, "x", jobs=3)
        assert [(c.mu_bit, c.mu_bs) for c in serial.cells] == [
            (c.mu_bit, c.mu_bs) for c in parallel.cells
        ]
        for a, b in zip(serial.cells, parallel.cells):
            for metric, stats in a.ratios.items():
                assert stats == b.ratios[metric]

    def test_sweep_progress_counts_out_of_order_completion(self, workload):
        dag, order = workload
        cfg = SweepConfig(mu_bits=(1.0,), mu_bss=(2.0, 8.0), p=2, q=2, seed=7)
        calls = []
        ratio_sweep(
            dag, order, cfg, "x",
            progress=lambda d, t: calls.append((d, t)), jobs=2,
        )
        assert calls == [(1, 2), (2, 2)]

    def test_paired_mode_gives_common_random_numbers(self, workload):
        # Regression: paired mode used to spawn PRIO's and FIFO's seeds
        # from one shared SeedSequence object, handing the two policies
        # *disjoint* streams.  With true pairing, FIFO-vs-FIFO ratios are
        # exactly 1 in every cell.
        dag, _ = workload
        fifo_as_prio = list(range(dag.n))
        cfg = SweepConfig(
            mu_bits=(1.0,), mu_bss=(4.0,), p=3, q=2, seed=11, paired=True
        )
        result = ratio_sweep(dag, fifo_as_prio, cfg, "x")
        # An identity-order oblivious policy is not FIFO, so compare
        # FIFO against FIFO directly through run_replications instead.
        from repro.sim.compile import CompiledDag
        from repro.sim.replication import MetricArrays

        compiled = CompiledDag.from_dag(dag)
        params = SimParams(mu_bit=1.0, mu_bs=4.0)
        seed = np.random.SeedSequence(11)
        a = run_replications(
            compiled, policy_factory("fifo"), params, 6, seed
        )
        b = run_replications(
            compiled, policy_factory("fifo"), params, 6, clone_seedseq(seed)
        )
        assert metrics_equal(a, b)
        assert result.cells  # the paired sweep itself ran

    def test_league_bit_identical(self, workload):
        dag, order = workload
        entrants = [
            Entrant.from_schedule("prio", order),
            Entrant("random", "random"),
            Entrant("fifo", "fifo"),
        ]
        params = SimParams(mu_bit=1.0, mu_bs=8.0)
        serial = league(dag, entrants, params, n_runs=8, seed=2)
        parallel = league(dag, entrants, params, n_runs=8, seed=2, jobs=2)
        assert serial == parallel

    def test_calibrate_bit_identical(self, workload):
        dag, order = workload
        params = SimParams(mu_bit=1.0, mu_bs=8.0)
        kwargs = dict(
            target_width=0.0, p=4, start_q=1, max_q=2, seed=3
        )
        serial = calibrate_cell(dag, list(order), params, **kwargs)
        parallel = calibrate_cell(dag, list(order), params, jobs=2, **kwargs)
        assert serial == parallel


class TestTelemetryDoesNotPerturb:
    """Telemetry and metrics are observational: enabling them must not
    change any simulation result, serially or in parallel."""

    def make_recorder(self, tmp_path, name="t.jsonl"):
        from repro.obs.recorder import TelemetryRecorder

        return TelemetryRecorder.open(tmp_path / name, command="test")

    def test_metrics_do_not_change_results(self, params):
        from repro.obs.metrics import MetricsRegistry

        dag = fork_join(8)
        factory = policy_factory("fifo")
        plain = run_replications(dag, factory, params, 10, seed=42)
        registry = MetricsRegistry()
        metered = run_replications(
            dag, factory, params, 10, seed=42, metrics=registry
        )
        assert metrics_equal(plain, metered)
        snap = registry.snapshot()
        assert snap["counters"]["engine.runs"] == 10
        assert snap["counters"]["engine.batches"] > 0

    def test_on_replication_called_in_order_with_results(self, params):
        dag = fork_join(6)
        factory = policy_factory("fifo")
        seen = []
        metered = run_replications(
            dag, factory, params, 7, seed=9,
            on_replication=lambda rep, res, el: seen.append((rep, res, el)),
        )
        assert [rep for rep, _, _ in seen] == list(range(7))
        assert [r.execution_time for _, r, _ in seen] == list(
            metered.execution_time
        )
        assert all(el is None or el >= 0.0 for _, _, el in seen)

    @pytest.mark.parametrize("jobs", [2, 4])
    def test_parallel_with_telemetry_bit_identical_to_plain_serial(
        self, params, jobs, tmp_path
    ):
        from repro.obs.events import read_telemetry
        from repro.obs.metrics import MetricsRegistry

        dag = fork_join(8)
        factory = policy_factory("fifo")
        plain = run_replications(dag, factory, params, 13, seed=42)
        registry = MetricsRegistry()
        with self.make_recorder(tmp_path) as telemetry:
            logged = run_replications(
                dag, factory, params, 13, seed=42, jobs=jobs,
                metrics=registry,
                on_replication=telemetry.replication_logger(
                    workload="fj8", policy="fifo", params=params
                ),
            )
        assert metrics_equal(plain, logged)
        # Worker counters merged back into the parent registry.
        assert registry.snapshot()["counters"]["engine.runs"] == 13
        # One valid record per replication, in replication order.
        records = read_telemetry(tmp_path / "t.jsonl")
        reps = [r for r in records if r["kind"] == "replication"]
        assert [r["rep"] for r in reps] == list(range(13))
        assert [r["execution_time"] for r in reps] == list(
            plain.execution_time
        )

    def test_no_simresult_field_changes_with_metrics_on(self, params):
        # Field-by-field: the full SimResult tuple must be unchanged, not
        # just the three headline metrics.
        import dataclasses

        from repro.obs.metrics import MetricsRegistry
        from repro.sim.compile import CompiledDag
        from repro.sim.engine import simulate

        dag = CompiledDag.from_dag(fork_join(8))
        seed = np.random.SeedSequence(11)

        def one(metrics):
            rng = np.random.default_rng(clone_seedseq(seed))
            return simulate(
                dag, policy_factory("fifo")(rng), params, rng, metrics=metrics
            )

        assert dataclasses.asdict(one(None)) == dataclasses.asdict(
            one(MetricsRegistry())
        )

    def test_sweep_with_telemetry_bit_identical(self, tmp_path):
        from repro.obs.events import read_telemetry

        dag = airsn(10)
        order = prio_schedule(dag).schedule
        cfg = SweepConfig(mu_bits=(1.0,), mu_bss=(2.0, 8.0), p=3, q=2, seed=7)
        plain = ratio_sweep(dag, order, cfg, "x")
        with self.make_recorder(tmp_path) as telemetry:
            serial = ratio_sweep(dag, order, cfg, "x", telemetry=telemetry)
        with self.make_recorder(tmp_path, "p.jsonl") as telemetry:
            parallel = ratio_sweep(
                dag, order, cfg, "x", jobs=3, telemetry=telemetry
            )
        for a, b, c in zip(plain.cells, serial.cells, parallel.cells):
            assert a.ratios == b.ratios == c.ratios
        # Serial and parallel logs agree modulo wall-clock timings.
        def stable(path):
            out = []
            for r in read_telemetry(path):
                r = dict(r)
                r.pop("elapsed_seconds", None)
                r.pop("seconds", None)
                out.append(r)
            return out

        s, p = stable(tmp_path / "t.jsonl"), stable(tmp_path / "p.jsonl")
        assert s == p
        reps = [r for r in s if r["kind"] == "replication"]
        # One record per replication: cells x sides x (p * q).
        assert len(reps) == 2 * 2 * (3 * 2)
