"""Tests for the scheduling policies."""

import numpy as np
import pytest

from repro.sim.policies import FifoPolicy, ObliviousPolicy, Policy, RandomPolicy


class TestObliviousPolicy:
    def test_serves_priority_order(self):
        p = ObliviousPolicy([2, 0, 1])  # job 2 first, then 0, then 1
        p.push(0)
        p.push(1)
        p.push(2)
        assert [p.pop(), p.pop(), p.pop()] == [2, 0, 1]

    def test_interleaved(self):
        p = ObliviousPolicy([2, 0, 1])
        p.push(1)
        assert p.pop() == 1
        p.push(0)
        p.push(2)
        assert p.pop() == 2

    def test_len(self):
        p = ObliviousPolicy([0, 1])
        assert len(p) == 0
        p.push(1)
        assert len(p) == 1


class TestFifoPolicy:
    def test_serves_arrival_order(self):
        p = FifoPolicy()
        for j in (3, 1, 2):
            p.push(j)
        assert [p.pop(), p.pop(), p.pop()] == [3, 1, 2]

    def test_len(self):
        p = FifoPolicy()
        p.push(0)
        p.push(1)
        p.pop()
        assert len(p) == 1


class TestRandomPolicy:
    def test_serves_every_job_once(self):
        p = RandomPolicy(np.random.default_rng(0))
        for j in range(10):
            p.push(j)
        served = {p.pop() for _ in range(10)}
        assert served == set(range(10))
        assert len(p) == 0

    def test_deterministic_given_seed(self):
        def run(seed):
            p = RandomPolicy(np.random.default_rng(seed))
            for j in range(8):
                p.push(j)
            return [p.pop() for _ in range(8)]

        assert run(5) == run(5)

    def test_is_actually_random(self):
        # Across seeds the first pop should vary.
        firsts = set()
        for seed in range(20):
            p = RandomPolicy(np.random.default_rng(seed))
            for j in range(10):
                p.push(j)
            firsts.add(p.pop())
        assert len(firsts) > 1


class TestPolicyInterface:
    def test_base_raises(self):
        p = Policy()
        with pytest.raises(NotImplementedError):
            p.push(0)
        with pytest.raises(NotImplementedError):
            p.pop()
        with pytest.raises(NotImplementedError):
            len(p)


class TestObliviousPolicyValidation:
    """Regression: a non-permutation order used to corrupt the rank table
    silently (duplicates overwrote ranks; missing ids kept rank 0)."""

    def test_duplicate_job_rejected(self):
        with pytest.raises(ValueError, match="more than once"):
            ObliviousPolicy([0, 1, 1])

    def test_out_of_range_job_rejected(self):
        with pytest.raises(ValueError, match="out of range"):
            ObliviousPolicy([0, 1, 3])
        with pytest.raises(ValueError, match="out of range"):
            ObliviousPolicy([-1, 0, 1])

    def test_non_integer_job_rejected(self):
        with pytest.raises(TypeError):
            ObliviousPolicy([0.0, 1.0])

    def test_numpy_integer_orders_still_accepted(self):
        p = ObliviousPolicy(np.array([2, 0, 1]))
        p.push(0)
        p.push(2)
        assert p.pop() == 2

    def test_valid_permutations_unaffected(self):
        p = ObliviousPolicy([3, 1, 0, 2])
        for j in range(4):
            p.push(j)
        assert [p.pop() for _ in range(4)] == [3, 1, 0, 2]
