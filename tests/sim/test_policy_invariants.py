"""Policy-invariant property suite: every registered policy, pinned.

Three invariants hold for *every* policy in the registry, over random
dags and every synthetic arena family:

1. **Topologically valid permutation** — draining a dag through the
   policy under eligibility gating serves every job exactly once and
   never serves a job before all its parents.
2. **Deterministic under a fixed seed** — the served sequence is a pure
   function of (dag, seed); policies without randomness ignore the seed
   entirely.
3. **No input mutation** — building and draining a policy leaves the
   ``Dag`` / ``CompiledDag`` byte-identical.

The upward-rank computation is additionally cross-checked against a
naive per-node reference, and the upward-rank *order* is pinned to be a
topological order outright (a stronger property than 1: with positive
weights a parent always outranks its descendants).
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dag.graph import Dag
from repro.sim.compile import CompiledDag
from repro.sim.policies import make_policy, policy_names, policy_spec
from repro.sim.rank import (
    dagps_order,
    downward_rank,
    topological_levels,
    upward_rank,
    upward_rank_order,
)
from repro.workloads.synthetic import arena_families, arena_family

from ..perf.strategies import dags

KINDS = tuple(k for k in policy_names() if k != "oblivious")


def _build(kind, dag, seed=0):
    """A fresh policy of *kind* for *dag* (seeded where randomness exists)."""
    spec = policy_spec(kind)
    if kind == "random":
        return make_policy(kind, rng=np.random.default_rng(seed))
    if spec.static_order is not None or kind == "prio-live":
        return make_policy(kind, dag=dag)
    return make_policy(kind)


def _drain(dag, policy):
    """Serve the whole dag through *policy* under eligibility gating.

    Completes each served job immediately (the degenerate one-worker
    schedule), asserting along the way that the policy only ever serves
    currently-eligible jobs.  Returns the served sequence.
    """
    compiled = dag if isinstance(dag, CompiledDag) else CompiledDag.from_dag(dag)
    indeg = compiled.indegree.astype(np.int64)
    eligible = set(np.flatnonzero(indeg == 0).tolist())
    for job in sorted(eligible):
        policy.push(job)
    sequence = []
    while len(policy):
        job = policy.pop()
        assert job in eligible, f"policy served ineligible job {job}"
        eligible.discard(job)
        sequence.append(job)
        policy.on_complete(job)
        for child in compiled.children[
            compiled.indptr[job] : compiled.indptr[job + 1]
        ].tolist():
            indeg[child] -= 1
            if indeg[child] == 0:
                eligible.add(child)
                policy.push(child)
    return sequence


def _assert_topologically_valid(dag, sequence):
    n = dag.n
    assert sorted(sequence) == list(range(n)), "not a permutation"
    position = {job: i for i, job in enumerate(sequence)}
    compiled = dag if isinstance(dag, CompiledDag) else CompiledDag.from_dag(dag)
    for u in range(n):
        for v in compiled.children[
            compiled.indptr[u] : compiled.indptr[u + 1]
        ].tolist():
            assert position[u] < position[v], f"child {v} served before parent {u}"


@pytest.mark.parametrize("kind", KINDS)
@settings(deadline=None, max_examples=25)
@given(dag=dags(max_n=12), seed=st.integers(min_value=0, max_value=2**31))
def test_drain_is_topologically_valid_permutation(kind, dag, seed):
    sequence = _drain(dag, _build(kind, dag, seed))
    _assert_topologically_valid(dag, sequence)


@pytest.mark.parametrize("kind", KINDS)
@settings(deadline=None, max_examples=15)
@given(dag=dags(max_n=12), seed=st.integers(min_value=0, max_value=2**31))
def test_drain_is_deterministic_under_fixed_seed(kind, dag, seed):
    first = _drain(dag, _build(kind, dag, seed))
    second = _drain(dag, _build(kind, dag, seed))
    assert first == second


@pytest.mark.parametrize("kind", KINDS)
@settings(deadline=None, max_examples=15)
@given(dag=dags(max_n=10))
def test_policy_does_not_mutate_dag(kind, dag):
    arcs_before = list(dag.arcs())
    fingerprint_before = dag.fingerprint()
    _drain(dag, _build(kind, dag))
    assert list(dag.arcs()) == arcs_before
    assert dag.fingerprint() == fingerprint_before


@pytest.mark.parametrize("family", arena_families())
@pytest.mark.parametrize("kind", KINDS)
def test_drain_over_every_arena_family(kind, family):
    """Every policy × every synthetic size distribution, compiled path."""
    compiled = arena_family(family, 60, rng=np.random.default_rng(7))
    if kind in ("prio", "prio-live"):
        # The PRIO decomposition needs the object-dag API; registered
        # static kinds and the dynamic baselines accept CompiledDag.
        pytest.skip("prio decomposition needs an object Dag")
    indptr = compiled.indptr.copy()
    children = compiled.children.copy()
    indegree = compiled.indegree.copy()
    sequence = _drain(compiled, _build(kind, compiled, seed=3))
    _assert_topologically_valid(compiled, sequence)
    assert np.array_equal(compiled.indptr, indptr)
    assert np.array_equal(compiled.children, children)
    assert np.array_equal(compiled.indegree, indegree)


# --------------------------------------------------------------------------
# Rank cross-checks


def _naive_upward_rank(dag: Dag, weights=None) -> list[float]:
    """Per-node reference: recurse over child lists, no vectorization.

    The hypothesis strategy numbers arcs upper-triangularly (u < v), so
    descending id is a reverse topological order.
    """
    n = dag.n
    w = [1.0] * n if weights is None else [float(x) for x in weights]
    children: list[list[int]] = [[] for _ in range(n)]
    for u, v in dag.arcs():
        assert u < v
        children[u].append(v)
    rank = [0.0] * n
    for u in reversed(range(n)):
        best = max((rank[v] for v in children[u]), default=0.0)
        rank[u] = w[u] + best
    return rank


@settings(deadline=None, max_examples=60)
@given(dag=dags(max_n=14), weighted=st.booleans(), wseed=st.integers(0, 2**16))
def test_upward_rank_matches_naive_reference(dag, weighted, wseed):
    weights = None
    if weighted and dag.n:
        weights = np.random.default_rng(wseed).uniform(0.5, 3.0, dag.n)
    ranks = upward_rank(dag, weights)
    assert ranks.tolist() == _naive_upward_rank(dag, weights)


@settings(deadline=None, max_examples=40)
@given(dag=dags(max_n=14))
def test_upward_rank_order_is_itself_topological(dag):
    order = upward_rank_order(dag)
    position = {job: i for i, job in enumerate(order)}
    for u, v in dag.arcs():
        assert position[u] < position[v]


@settings(deadline=None, max_examples=40)
@given(
    dag=dags(max_n=14),
    quantile=st.sampled_from([0.0, 0.25, 0.5, 0.75, 0.9]),
)
def test_dagps_order_is_a_permutation_for_every_quantile(dag, quantile):
    order = dagps_order(dag, troublesome_quantile=quantile)
    assert sorted(order) == list(range(dag.n))


def test_dagps_rejects_bad_quantile(diamond):
    with pytest.raises(ValueError, match="troublesome_quantile"):
        dagps_order(diamond, troublesome_quantile=1.0)
    with pytest.raises(ValueError, match="troublesome_quantile"):
        dagps_order(diamond, troublesome_quantile=-0.1)


def test_rank_weight_validation(diamond):
    with pytest.raises(ValueError, match="one entry per job"):
        upward_rank(diamond, np.ones(3))
    with pytest.raises(ValueError, match="positive"):
        upward_rank(diamond, np.zeros(4))


def test_diamond_ranks_by_hand(diamond):
    """0 -> {1, 2} -> 3 with unit weights: ranks 3, 2, 2, 1."""
    assert upward_rank(diamond).tolist() == [3.0, 2.0, 2.0, 1.0]
    assert downward_rank(diamond).tolist() == [0.0, 1.0, 1.0, 2.0]
    assert upward_rank_order(diamond) == [0, 1, 2, 3]
    levels = topological_levels(diamond)
    assert [lv.tolist() for lv in levels] == [[0], [1, 2], [3]]


def test_longer_chain_outranks_short_chain():
    """Two chains from one source: the longer chain's head ranks higher."""
    #      0 -> 1 -> 2 -> 3   (long chain)
    #      0 -> 4              (short branch)
    dag = Dag(5, [(0, 1), (1, 2), (2, 3), (0, 4)])
    order = upward_rank_order(dag)
    assert order.index(1) < order.index(4)
