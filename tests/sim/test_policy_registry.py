"""Registry and CLI contract tests for the policy zoo.

The registry is the single source of truth for policy names: the CLI,
the serving tier, and the schedule cache all derive their choices from
it.  These tests pin that contract — registering a policy in
``repro.sim.policies`` is the only step needed to expose it everywhere,
and unknown names fail with a typed error that lists the valid choices.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cli import build_parser, main
from repro.dag.graph import Dag
from repro.perf.cache import schedule_algorithms
from repro.serve.protocol import POLICIES
from repro.sim.policies import (
    Policy,
    PolicySpec,
    UnknownPolicyError,
    cli_policy_names,
    make_policy,
    policy_names,
    policy_spec,
    register_policy,
)


@pytest.fixture
def dag() -> Dag:
    return Dag(5, [(0, 1), (0, 2), (1, 3), (2, 3), (3, 4)])


class TestMakePolicyRoundTrip:
    def test_every_registered_name_builds(self, dag):
        rng = np.random.default_rng(0)
        for kind in policy_names():
            policy = make_policy(
                kind, order=list(range(dag.n)), rng=rng, dag=dag
            )
            assert isinstance(policy, Policy), kind

    def test_static_kinds_build_from_dag_alone(self, dag):
        for kind in policy_names():
            spec = policy_spec(kind)
            if spec.static_order is None:
                continue
            order = spec.static_order(dag)
            assert sorted(order) == list(range(dag.n)), kind
            # A precomputed order and a dag-derived build serve identically.
            a = make_policy(kind, order=order)
            b = make_policy(kind, dag=dag)
            for job in range(dag.n):
                a.push(job)
                b.push(job)
            assert [a.pop() for _ in range(dag.n)] == [
                b.pop() for _ in range(dag.n)
            ], kind

    def test_unknown_kind_raises_typed_error_listing_choices(self):
        with pytest.raises(UnknownPolicyError) as excinfo:
            make_policy("lifo")
        err = excinfo.value
        assert isinstance(err, ValueError)  # the historical contract
        assert err.kind == "lifo"
        assert err.choices == policy_names()
        for name in policy_names():
            assert name in str(err)

    def test_policy_spec_unknown_kind_raises(self):
        with pytest.raises(UnknownPolicyError, match="unknown policy"):
            policy_spec("bogus")

    def test_register_rejects_duplicate_name(self):
        with pytest.raises(ValueError, match="already registered"):
            register_policy(
                PolicySpec(name="fifo", summary="dup", build=lambda **kw: None)
            )

    def test_missing_ingredient_errors(self, dag):
        with pytest.raises(ValueError, match="order"):
            make_policy("oblivious")
        with pytest.raises(ValueError, match="rng"):
            make_policy("random")
        with pytest.raises(ValueError, match="dag"):
            make_policy("upward-rank")
        with pytest.raises(ValueError, match="dag"):
            make_policy("dagps")
        with pytest.raises(ValueError, match="dag"):
            make_policy("prio-live")


class TestRegistryShape:
    def test_cli_names_are_a_subset_in_registration_order(self):
        names = policy_names()
        cli_names = cli_policy_names()
        assert set(cli_names) <= set(names)
        assert list(cli_names) == [n for n in names if n in cli_names]

    def test_oblivious_is_builder_level_only(self):
        assert "oblivious" in policy_names()
        assert "oblivious" not in cli_policy_names()

    def test_new_policies_are_registered(self):
        assert "upward-rank" in cli_policy_names()
        assert "dagps" in cli_policy_names()

    def test_static_kinds_are_cacheable_algorithms(self):
        """Every static-order policy is a schedule-cache algorithm, so
        its identity keys cache entries."""
        for kind in policy_names():
            if policy_spec(kind).static_order is not None and kind != "oblivious":
                assert kind in schedule_algorithms(), kind


class TestCliContract:
    def test_simulate_choices_match_registry(self):
        """Regression: ``-a`` choices are derived, not hard-coded."""
        parser = build_parser()
        args = parser.parse_args(["simulate", "airsn-small"])
        action = next(
            a
            for a in parser._subparsers._group_actions[0]
            .choices["simulate"]
            ._actions
            if "-a" in a.option_strings or "--algorithm" in a.option_strings
        )
        assert tuple(action.choices) == cli_policy_names()
        assert args.algorithm == "prio"

    def test_sweep_policy_choices_match_registry(self):
        parser = build_parser()
        action = next(
            a
            for a in parser._subparsers._group_actions[0]
            .choices["sweep"]
            ._actions
            if "--policy" in a.option_strings
        )
        assert tuple(action.choices) == cli_policy_names()

    def test_serve_policies_match_registry(self):
        assert tuple(POLICIES) == cli_policy_names()

    def test_league_rejects_unknown_policy_with_one_line_error(self, capsys):
        code = main(["league", "airsn-small", "--policy", "bogus"])
        assert code == 2
        captured = capsys.readouterr()
        lines = captured.err.strip().splitlines()
        assert len(lines) == 1
        assert lines[0].startswith("error: unknown policy 'bogus'")
        for name in cli_policy_names():
            assert name in lines[0]

    def test_league_accepts_registry_policies(self, capsys):
        code = main(
            [
                "league",
                "airsn-small",
                "--runs",
                "2",
                "--policy",
                "upward-rank",
                "--policy",
                "fifo",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "upward-rank" in out
        assert "fifo" in out
        # FIFO is the paper's baseline whenever it races, regardless of
        # where the registry roster order puts it (league() itself
        # defaults to the *last* entrant).
        fifo_row = next(
            line for line in out.splitlines() if line.startswith("fifo")
        )
        assert "baseline" in fifo_row
