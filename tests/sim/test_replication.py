"""Tests for replicated runs and metric arrays."""

import numpy as np
import pytest

from repro.dag.builders import fork_join
from repro.sim.engine import SimParams
from repro.sim.replication import (
    IncompleteBatchError,
    MetricArrays,
    policy_factory,
    run_replications,
)


@pytest.fixture
def params():
    return SimParams(mu_bit=1.0, mu_bs=4.0)


class TestRunReplications:
    def test_count(self, params):
        m = run_replications(fork_join(5), policy_factory("fifo"), params, 7)
        assert len(m) == 7
        assert m.execution_time.shape == (7,)

    def test_reproducible(self, params):
        d = fork_join(5)
        a = run_replications(d, policy_factory("fifo"), params, 5, seed=11)
        b = run_replications(d, policy_factory("fifo"), params, 5, seed=11)
        assert np.array_equal(a.execution_time, b.execution_time)

    def test_independent_replications(self, params):
        m = run_replications(fork_join(8), policy_factory("fifo"), params, 10)
        assert len(np.unique(m.execution_time)) > 1

    def test_seedsequence_accepted(self, params):
        seq = np.random.SeedSequence(3)
        m = run_replications(fork_join(3), policy_factory("fifo"), params, 2, seq)
        assert len(m) == 2

    def test_oblivious_factory(self, params):
        d = fork_join(5)
        order = list(range(d.n))
        m = run_replications(
            d, policy_factory("oblivious", order=order), params, 3
        )
        assert len(m) == 3

    def test_metric_accessor(self, params):
        m = run_replications(fork_join(3), policy_factory("fifo"), params, 2)
        assert np.array_equal(m.metric("utilization"), m.utilization)
        with pytest.raises(KeyError):
            m.metric("latency")

    def test_metric_ranges(self, params):
        m = run_replications(fork_join(6), policy_factory("fifo"), params, 20)
        assert (m.utilization > 0).all() and (m.utilization <= 1).all()
        assert (m.stalling_probability >= 0).all()
        assert (m.stalling_probability <= 1).all()
        assert (m.execution_time > 0).all()


class PoisonedFactory:
    """Picklable policy factory that fails in the worker, every time."""

    def __call__(self, rng):
        raise RuntimeError("poisoned build_policy")


class TestPoolCleanup:
    """Regression: a worker error mid-batch must not leak pool processes."""

    def _drain_children(self, timeout=10.0):
        import multiprocessing
        import time

        deadline = time.monotonic() + timeout
        while multiprocessing.active_children() and time.monotonic() < deadline:
            time.sleep(0.05)
        return multiprocessing.active_children()

    def test_worker_error_propagates_and_pool_is_reaped(self, params):
        with pytest.raises(RuntimeError, match="poisoned"):
            run_replications(
                fork_join(5), PoisonedFactory(), params, 8, seed=1, jobs=2
            )
        assert self._drain_children() == []

    def test_from_arrays_roundtrip(self, params):
        m = run_replications(fork_join(5), policy_factory("fifo"), params, 6)
        rebuilt = MetricArrays.from_arrays(
            m.execution_time.tolist(),
            m.stalling_probability.tolist(),
            m.utilization.tolist(),
        )
        assert np.array_equal(rebuilt.execution_time, m.execution_time)
        assert np.array_equal(
            rebuilt.stalling_probability, m.stalling_probability
        )
        assert np.array_equal(rebuilt.utilization, m.utilization)

    def test_from_arrays_length_mismatch(self):
        with pytest.raises(ValueError, match="equal lengths"):
            MetricArrays.from_arrays([1.0, 2.0], [0.5], [0.9, 0.8])


class TestIncompleteBatch:
    """Regression: a batch with empty result slots must raise a typed
    error naming the missing replications, not crash on ``None``."""

    def _results(self, params, count):
        m = run_replications(
            fork_join(4), policy_factory("fifo"), params, count
        )
        from repro.sim.engine import SimResult

        return [
            SimResult(t, 4, 1, 0, 4)
            for t in m.execution_time
        ]

    def test_none_slots_raise_with_indices(self, params):
        results = self._results(params, 6)
        results[1] = None
        results[4] = None
        with pytest.raises(IncompleteBatchError) as excinfo:
            MetricArrays(results)
        err = excinfo.value
        assert err.missing == (1, 4)
        assert err.total == 6
        assert "indices 1, 4" in str(err)
        assert "--resume" in str(err)

    def test_many_missing_slots_are_truncated_in_message(self, params):
        results = [None] * 30
        with pytest.raises(IncompleteBatchError) as excinfo:
            MetricArrays(results)
        assert "(20 more)" in str(excinfo.value)
        assert excinfo.value.missing == tuple(range(30))

    def test_complete_batch_passes(self, params):
        MetricArrays(self._results(params, 3))
