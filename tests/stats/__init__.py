"""Test package."""
