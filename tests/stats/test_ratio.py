"""Tests for ratio confidence intervals."""

import numpy as np
import pytest

from repro.stats.ratio import RatioStatistics, ratio_statistics, trimmed_interval


class TestTrimmedInterval:
    def test_drops_tails(self):
        values = np.arange(100.0)
        lo, hi = trimmed_interval(values, confidence=0.95)
        assert lo == 2.0 and hi == 97.0

    def test_full_range_at_confidence_one_minus_eps(self):
        values = np.array([1.0, 2.0, 3.0])
        lo, hi = trimmed_interval(values, confidence=0.999)
        assert lo == 1.0 and hi == 3.0

    def test_single_value(self):
        assert trimmed_interval(np.array([5.0])) == (5.0, 5.0)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            trimmed_interval(np.array([]))


class TestRatioStatistics:
    def test_identical_samples_give_unit_ratio(self):
        s = np.full(10, 3.0)
        stats = ratio_statistics(s, s)
        assert stats.median == 1.0
        assert stats.ci_low == 1.0 and stats.ci_high == 1.0

    def test_scaling(self):
        num = np.full(10, 2.0)
        den = np.full(10, 4.0)
        stats = ratio_statistics(num, den)
        assert stats.mean == pytest.approx(0.5)

    def test_all_pairs_used(self):
        num = np.array([1.0, 2.0])
        den = np.array([1.0, 2.0])
        stats = ratio_statistics(num, den, confidence=0.999)
        # ratios: 1, .5, 2, 1
        assert stats.ci_low == 0.5 and stats.ci_high == 2.0
        assert stats.mean == pytest.approx(1.125)

    def test_zero_denominator_gives_none(self):
        num = np.ones(5)
        den = np.array([1.0, 0.0, 1.0, 1.0, 1.0])
        assert ratio_statistics(num, den) is None

    def test_validation(self):
        with pytest.raises(ValueError):
            ratio_statistics(np.array([]), np.ones(3))
        with pytest.raises(ValueError):
            ratio_statistics(np.ones(3), np.ones(3), confidence=1.5)

    def test_interval_predicates(self):
        stats = RatioStatistics(
            mean=0.8, std=0.05, median=0.8, ci_low=0.7, ci_high=0.85
        )
        assert stats.interval_below(0.87)  # the paper's 13% claim shape
        assert not stats.interval_below(0.8)
        assert stats.interval_above(0.65)
        assert not stats.interval_above(0.75)

    def test_str(self):
        stats = RatioStatistics(0.8, 0.05, 0.79, 0.7, 0.9)
        text = str(stats)
        assert "median=0.79" in text and "95%" in text

    def test_interval_matches_percentiles(self):
        # The paper's trimming is a percentile interval of the empirical
        # ratio distribution; check against numpy percentiles directly.
        rng = np.random.default_rng(0)
        num = rng.normal(10, 1, size=80)
        den = rng.normal(10, 1, size=80)
        stats = ratio_statistics(num, den)
        ratios = np.divide.outer(num, den).ravel()
        assert stats.ci_low == pytest.approx(
            np.percentile(ratios, 2.5), rel=0.01
        )
        assert stats.ci_high == pytest.approx(
            np.percentile(ratios, 97.5), rel=0.01
        )
