"""Tests for empirical sampling distributions."""

import numpy as np
import pytest

from repro.stats.sampling import (
    sampling_distribution,
    sampling_distribution_from_values,
)


class TestFromValues:
    def test_folds_means(self):
        values = np.array([1.0, 3.0, 5.0, 7.0])
        out = sampling_distribution_from_values(values, p=2, q=2)
        assert out.tolist() == [2.0, 6.0]

    def test_q_one_is_identity(self):
        values = np.arange(5.0)
        out = sampling_distribution_from_values(values, p=5, q=1)
        assert np.array_equal(out, values)

    def test_p_one_is_grand_mean(self):
        values = np.arange(6.0)
        out = sampling_distribution_from_values(values, p=1, q=6)
        assert out.tolist() == [2.5]

    def test_size_mismatch_rejected(self):
        with pytest.raises(ValueError, match="measurements"):
            sampling_distribution_from_values(np.arange(5.0), p=2, q=2)

    def test_nonpositive_pq_rejected(self):
        with pytest.raises(ValueError):
            sampling_distribution_from_values(np.array([]), p=0, q=1)

    def test_2d_rejected(self):
        with pytest.raises(ValueError):
            sampling_distribution_from_values(np.ones((2, 2)), p=2, q=2)


class TestCallableForm:
    def test_indices_passed_in_order(self):
        seen = []

        def measure(i):
            seen.append(i)
            return float(i)

        out = sampling_distribution(measure, p=2, q=3)
        assert seen == list(range(6))
        assert out.tolist() == [1.0, 4.0]

    def test_variance_shrinks_with_q(self):
        rng = np.random.default_rng(0)
        raw = rng.normal(0, 1, size=400)
        narrow = sampling_distribution_from_values(raw, p=10, q=40)
        wide = sampling_distribution_from_values(raw[:10], p=10, q=1)
        assert narrow.std() < wide.std()
