"""Tests for the significance-test helpers."""

import numpy as np
import pytest

from repro.stats.tests import bootstrap_mean_ratio, sign_test


class TestSignTest:
    def test_clear_winner(self):
        first = np.arange(10.0)
        second = first + 1.0
        result = sign_test(first, second)
        assert result.n_wins == 10 and result.n_ties == 0
        assert result.p_value == pytest.approx(2.0 ** -10)
        assert result.significant()

    def test_no_effect(self):
        rng = np.random.default_rng(0)
        a = rng.normal(size=30)
        b = rng.normal(size=30)
        result = sign_test(a, b)
        assert result.p_value > 0.01

    def test_ties_discarded(self):
        a = np.array([1.0, 2.0, 3.0])
        b = np.array([1.0, 3.0, 4.0])
        result = sign_test(a, b)
        assert result.n_ties == 1
        assert result.n_wins == 2
        # 2 wins of 2 effective pairs: p = 1/4
        assert result.p_value == pytest.approx(0.25)

    def test_all_ties(self):
        a = np.ones(5)
        result = sign_test(a, a)
        assert result.p_value == 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            sign_test(np.ones(3), np.ones(4))
        with pytest.raises(ValueError):
            sign_test(np.array([]), np.array([]))

    def test_exact_binomial(self):
        # 7 wins of 10: tail = sum_{k>=7} C(10,k)/2^10 = 176/1024
        a = np.zeros(10)
        b = np.array([1.0] * 7 + [-1.0] * 3)
        assert sign_test(a, b).p_value == pytest.approx(176 / 1024)


class TestBootstrapMeanRatio:
    def test_point_estimate(self):
        rng = np.random.default_rng(1)
        num = np.full(20, 2.0)
        den = np.full(20, 4.0)
        point, lo, hi = bootstrap_mean_ratio(num, den, rng)
        assert point == pytest.approx(0.5)
        assert lo == pytest.approx(0.5) and hi == pytest.approx(0.5)

    def test_interval_covers_truth(self):
        rng = np.random.default_rng(2)
        num = rng.normal(8.5, 1.0, size=100)
        den = rng.normal(10.0, 1.0, size=100)
        point, lo, hi = bootstrap_mean_ratio(num, den, rng)
        assert lo < 0.85 < hi
        assert lo < point < hi

    def test_detects_real_difference(self):
        rng = np.random.default_rng(3)
        num = rng.normal(8.0, 0.5, size=200)
        den = rng.normal(10.0, 0.5, size=200)
        _, lo, hi = bootstrap_mean_ratio(num, den, rng)
        assert hi < 1.0  # confidently below parity

    def test_reproducible(self):
        num = np.arange(1.0, 21.0)
        den = np.arange(2.0, 22.0)
        a = bootstrap_mean_ratio(num, den, np.random.default_rng(7))
        b = bootstrap_mean_ratio(num, den, np.random.default_rng(7))
        assert a == b

    def test_validation(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            bootstrap_mean_ratio(np.array([]), np.ones(3), rng)
        with pytest.raises(ValueError):
            bootstrap_mean_ratio(np.ones(3), np.ones(3), rng, confidence=2.0)

    def test_zero_denominator_rejected(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError, match="zero"):
            bootstrap_mean_ratio(np.ones(3), np.zeros(3), rng)
