"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main

FIG3 = """\
JOB a a.sub
JOB b b.sub
JOB c c.sub
JOB d d.sub
JOB e e.sub
PARENT a CHILD b
PARENT c CHILD d e
"""


@pytest.fixture
def fig3_file(tmp_path):
    path = tmp_path / "IV.dag"
    path.write_text(FIG3)
    return path


class TestPrioCommand:
    def test_instruments_in_place(self, fig3_file, capsys):
        assert main(["prio", str(fig3_file)]) == 0
        assert 'jobpriority="5"' in fig3_file.read_text()
        out = capsys.readouterr().out
        assert "5 jobs prioritized" in out

    def test_output_flag(self, fig3_file, tmp_path, capsys):
        out_file = tmp_path / "out.dag"
        main(["prio", str(fig3_file), "-o", str(out_file)])
        assert "jobpriority" not in fig3_file.read_text()
        assert "jobpriority" in out_file.read_text()

    def test_verbose_prints_schedule(self, fig3_file, capsys):
        main(["prio", str(fig3_file), "-v"])
        assert "c, a, b, d, e" in capsys.readouterr().out


class TestScheduleCommand:
    def test_prio_schedule_of_file(self, fig3_file, capsys):
        main(["schedule", str(fig3_file)])
        assert capsys.readouterr().out.strip() == "c, a, b, d, e"

    def test_fifo_schedule(self, fig3_file, capsys):
        main(["schedule", str(fig3_file), "-a", "fifo"])
        assert capsys.readouterr().out.strip() == "a, c, b, d, e"

    def test_workload_by_name(self, capsys):
        main(["schedule", "airsn-small", "-1"])
        lines = capsys.readouterr().out.strip().splitlines()
        assert lines[0] == "prep00"
        assert len(lines) == 21 + 3 * 40 + 2


class TestCurvesCommand:
    def test_summary(self, capsys):
        main(["curves", "airsn-small"])
        out = capsys.readouterr().out
        assert "airsn-small" in out and "max(E_PRIO-E_FIFO)" in out

    def test_dump(self, capsys):
        main(["curves", "airsn-small", "--dump"])
        out = capsys.readouterr().out
        assert "# airsn-small: t, E_PRIO, E_FIFO, diff" in out


class TestSimulateCommand:
    def test_prints_metrics(self, capsys):
        main(["simulate", "airsn-small", "--mu-bit", "1", "--mu-bs", "8"])
        out = capsys.readouterr().out
        assert "execution time" in out
        assert "stalling probability" in out
        assert "utilization" in out

    @pytest.mark.parametrize("algo", ["fifo", "random"])
    def test_algorithms(self, algo, capsys):
        main(["simulate", "airsn-small", "-a", algo])
        assert f"algorithm           : {algo}" in capsys.readouterr().out


class TestSweepCommand:
    def test_small_sweep(self, capsys):
        main(
            [
                "sweep", "airsn-small",
                "--mu-bit", "1", "--mu-bs", "4", "16",
                "-p", "3", "-q", "1",
            ]
        )
        out = capsys.readouterr().out
        assert "mu_BIT = 1" in out
        assert out.count("|") >= 6


class TestDecomposeCommand:
    def test_lists_blocks_and_families(self, capsys):
        main(["decompose", "airsn-small"])
        out = capsys.readouterr().out
        assert "building blocks" in out
        assert "K(1,40)" in out
        assert "largest" in out

    def test_on_dag_file(self, fig3_file, capsys):
        main(["decompose", str(fig3_file)])
        out = capsys.readouterr().out
        assert "2 building blocks" in out


class TestDotCommand:
    def test_stdout(self, fig3_file, capsys):
        main(["dot", str(fig3_file), "--no-priorities"])
        out = capsys.readouterr().out
        assert out.startswith("digraph")
        assert '"c" -> "d";' in out

    def test_with_priorities(self, fig3_file, capsys):
        main(["dot", str(fig3_file)])
        assert 'label="c (5)"' in capsys.readouterr().out

    def test_output_file(self, fig3_file, tmp_path, capsys):
        target = tmp_path / "g.dot"
        main(["dot", str(fig3_file), "-o", str(target)])
        assert target.read_text().startswith("digraph")


class TestRegionsCommand:
    def test_summary(self, capsys):
        main(
            [
                "regions", "airsn-small",
                "--mu-bs", "2", "8",
                "-p", "4", "-q", "1",
            ]
        )
        out = capsys.readouterr().out
        assert "PRIO advantage regions" in out
        assert "peak at mu_BS=" in out


class TestOverheadCommand:
    def test_table(self, capsys):
        main(["overhead", "airsn-small"])
        out = capsys.readouterr().out
        assert "airsn-small" in out and "components" in out


class TestExportCommand:
    def test_export_workload(self, tmp_path, capsys):
        target = tmp_path / "flow"
        main(["export", "airsn-small", str(target)])
        out = capsys.readouterr().out
        assert "143 jobs" in out
        assert (target / "airsn-small.dag").is_file()
        assert (target / "snr.sub").is_file()

    def test_export_and_prioritize(self, tmp_path, capsys):
        target = tmp_path / "flow"
        main(["export", "airsn-small", str(target), "--prioritize"])
        out = capsys.readouterr().out
        assert "jobs prioritized" in out
        assert "jobpriority" in (target / "airsn-small.dag").read_text()


class TestLeagueCommand:
    def test_table(self, capsys):
        main(["league", "airsn-small", "--runs", "6"])
        out = capsys.readouterr().out
        assert "policy league" in out
        assert "prio" in out and "fifo" in out and "baseline" in out


class TestRoundsCommand:
    def test_table(self, capsys):
        main(["rounds", "airsn-small", "--batch-sizes", "1", "8", "64"])
        out = capsys.readouterr().out
        assert "deterministic rounds" in out
        lines = [l for l in out.splitlines() if l.strip() and l.strip()[0].isdigit()]
        assert len(lines) == 3
        # b=1 is fully sequential: both need n rounds, ratio 1.
        first = lines[0].split()
        assert first[1] == first[2] == "143"


class TestRunCommand:
    def _workflow(self, tmp_path, fail_job=False):
        (tmp_path / "touch.sub").write_text(
            "executable = /usr/bin/touch\narguments = $(JOB).out\nqueue\n"
        )
        (tmp_path / "fail.sub").write_text(
            "executable = /bin/false\nqueue\n"
        )
        middle = "fail.sub" if fail_job else "touch.sub"
        dagfile = tmp_path / "flow.dag"
        dagfile.write_text(
            f"JOB one touch.sub\nJOB two {middle}\nJOB three touch.sub\n"
            "PARENT one CHILD two\nPARENT two CHILD three\n"
        )
        return dagfile

    def test_successful_run(self, tmp_path, capsys):
        dagfile = self._workflow(tmp_path)
        assert main(["run", str(dagfile), "--prioritize"]) == 0
        out = capsys.readouterr().out
        assert "completed successfully" in out
        assert (tmp_path / "one.out").is_file()
        assert (tmp_path / "three.out").is_file()

    def test_failed_run_writes_rescue(self, tmp_path, capsys):
        dagfile = self._workflow(tmp_path, fail_job=True)
        assert main(["run", str(dagfile)]) == 1
        out = capsys.readouterr().out
        assert "FAILED two" in out
        rescue = tmp_path / "flow.dag.rescue"
        assert rescue.is_file()
        assert "JOB one touch.sub DONE" in rescue.read_text()


class TestAdvanceCommand:
    """`prio advance`: event files against a checkpointed live session."""

    def _events(self, tmp_path, name, events):
        import json

        path = tmp_path / name
        path.write_text(json.dumps(events))
        return path

    def _oracle(self, fig3_file, executed_labels):
        from repro.core.rescheduling import reprioritize_remnant
        from repro.dagman.parser import parse_dagman_file

        dag = parse_dagman_file(str(fig3_file)).to_dag()
        labels = {dag.label(u): u for u in range(dag.n)}
        executed = {labels[name] for name in executed_labels}
        priorities = reprioritize_remnant(dag, executed).priorities
        return [
            f'VARS {dag.label(u)} jobpriority="{priorities[u]}"'
            for u in sorted(range(dag.n), key=lambda u: -priorities[u])
            if priorities[u] > 0
        ]

    def test_creates_session_and_emits_rescue_vars(
        self, fig3_file, tmp_path, capsys
    ):
        events = self._events(
            tmp_path, "batch1.json", [{"kind": "complete", "label": "c"}]
        )
        code = main([
            "advance", str(events),
            "--session-dir", str(tmp_path / "sessions"),
            "--dag", str(fig3_file), "--name", "run1",
        ])
        assert code == 0
        captured = capsys.readouterr()
        assert "created session" in captured.err
        assert "1 events applied" in captured.err
        assert captured.out.splitlines() == self._oracle(fig3_file, {"c"})

    def test_session_persists_across_invocations(
        self, fig3_file, tmp_path, capsys
    ):
        sessions = str(tmp_path / "sessions")
        batch1 = self._events(
            tmp_path, "batch1.json", [{"kind": "complete", "label": "c"}]
        )
        batch2 = self._events(
            tmp_path, "batch2.json",
            [{"kind": "fail", "label": "a"},
             {"kind": "complete", "label": "a"}],
        )
        args = ["--session-dir", sessions, "--dag", str(fig3_file)]
        assert main(["advance", str(batch1)] + args) == 0
        capsys.readouterr()
        # Second invocation is a fresh process in spirit: the session is
        # recovered from the checkpoint, seq defaults to the next batch.
        assert main(["advance", str(batch2)] + args) == 0
        captured = capsys.readouterr()
        assert "created session" not in captured.err
        assert "seq 2" in captured.err
        assert captured.out.splitlines() == self._oracle(
            fig3_file, {"c", "a"}
        )

    def test_needs_session_or_dag(self, tmp_path, capsys):
        events = self._events(tmp_path, "batch.json", [])
        code = main([
            "advance", str(events), "--session-dir", str(tmp_path / "s"),
        ])
        assert code == 2
        assert "need --session or --dag" in capsys.readouterr().err

    def test_illegal_event_exits_2(self, fig3_file, tmp_path, capsys):
        events = self._events(
            tmp_path, "bad.json", [{"kind": "complete", "label": "b"}]
        )
        code = main([
            "advance", str(events),
            "--session-dir", str(tmp_path / "sessions"),
            "--dag", str(fig3_file),
        ])
        assert code == 2
        err = capsys.readouterr().err
        assert "error: job b cannot complete before its parent a" in err


class TestProfileCommand:
    def test_prints_stage_breakdown(self, capsys):
        assert main(["profile", "--workload", "airsn-small", "--runs", "2"]) == 0
        out = capsys.readouterr().out
        for stage in (
            "load", "transitive_reduction", "decompose", "recurse",
            "combine", "compile", "simulate", "total",
        ):
            assert stage in out
        assert "engine counters" in out

    def test_telemetry_written(self, tmp_path, capsys):
        from repro.obs.events import read_telemetry

        path = tmp_path / "profile.jsonl"
        main([
            "profile", "-w", "airsn-small", "--runs", "3",
            "--telemetry", str(path),
        ])
        records = read_telemetry(path)
        assert records[0]["kind"] == "run"
        assert records[0]["command"] == "profile"
        reps = [r for r in records if r["kind"] == "replication"]
        assert len(reps) == 3
        assert "wrote" in capsys.readouterr().err


class TestSweepTelemetry:
    def test_one_record_per_replication_and_unchanged_output(
        self, tmp_path, capsys
    ):
        from repro.obs.events import read_telemetry

        args = [
            "sweep", "airsn-small", "--mu-bit", "1.0", "--mu-bs", "8.0",
            "-p", "3", "-q", "2", "--seed", "5",
        ]
        assert main(args) == 0
        plain = capsys.readouterr().out
        path = tmp_path / "sweep.jsonl"
        assert main(args + ["--telemetry", str(path)]) == 0
        logged = capsys.readouterr().out
        assert logged == plain  # telemetry never changes the results
        records = read_telemetry(path)
        reps = [r for r in records if r["kind"] == "replication"]
        # one cell x two sides (prio, fifo) x p*q replications
        assert len(reps) == 2 * 3 * 2
        assert {r["policy"] for r in reps} == {"prio", "fifo"}
        cells = [r for r in records if r["kind"] == "cell"]
        assert len(cells) == 1
        assert cells[0]["mu_bs"] == 8.0


class TestImportCommand:
    @pytest.fixture
    def cax_root(self, tmp_path):
        from repro.workloads.corpus import cax_tree, write_tree

        return write_tree(cax_tree(runs=2, chunks=2), tmp_path)

    def test_summary(self, cax_root, capsys):
        assert main(["import", str(cax_root)]) == 0
        out = capsys.readouterr().out
        assert "jobs                : 12" in out
        assert "fingerprint" in out
        assert "max nesting depth   : 1" in out

    def test_flat_output_reimports_identically(
        self, cax_root, tmp_path, capsys
    ):
        flat = tmp_path / "flat.dag"
        assert main(["import", str(cax_root), "-o", str(flat)]) == 0
        first = capsys.readouterr().out
        assert main(["import", str(flat)]) == 0
        second = capsys.readouterr().out
        fp = [l for l in first.splitlines() if "fingerprint" in l]
        assert fp == [l for l in second.splitlines() if "fingerprint" in l]

    def test_prioritize_writes_jobpriority(self, cax_root, tmp_path, capsys):
        flat = tmp_path / "flat.dag"
        assert (
            main(["import", str(cax_root), "--prioritize", "-o", str(flat)])
            == 0
        )
        assert "jobpriority" in flat.read_text()

    def test_json_artifact(self, cax_root, tmp_path, capsys):
        import json

        out = tmp_path / "flat.json"
        assert main(["import", str(cax_root), "--json", str(out)]) == 0
        payload = json.loads(out.read_text())
        assert payload["format"] == "repro-import-v1"
        assert len(payload["jobs"]) == 12
        assert payload["dag"]["n"] == 12

    def test_simulate(self, cax_root, capsys):
        assert main(["import", str(cax_root), "--simulate"]) == 0
        out = capsys.readouterr().out
        assert "execution time" in out
        assert "utilization" in out

    def test_no_subdags(self, cax_root, capsys):
        assert main(["import", str(cax_root), "--no-subdags"]) == 0
        assert "jobs                : 4" in capsys.readouterr().out

    def test_rescue_flag(self, cax_root, capsys):
        cax_root.with_name("production.dag.rescue001").write_text(
            "DONE stage_runlist\n"
        )
        assert main(["import", str(cax_root), "--rescue"]) == 0
        assert "(1 done)" in capsys.readouterr().out

    def test_missing_file_exits_2(self, tmp_path, capsys):
        assert main(["import", str(tmp_path / "absent.dag")]) == 2
        assert "error:" in capsys.readouterr().err

    def test_include_cycle_exits_2(self, tmp_path, capsys):
        path = tmp_path / "loop.dag"
        path.write_text("SPLICE s loop.dag\n")
        assert main(["import", str(path)]) == 2
        assert "recursive include" in capsys.readouterr().err

    def test_nested_tree_works_everywhere(self, cax_root, capsys):
        # _load_dag goes through the importer: nested trees are accepted
        # by any dag-taking subcommand.
        assert main(["schedule", str(cax_root)]) == 0
        assert "stage_runlist" in capsys.readouterr().out


class TestHelpSurface:
    @pytest.mark.parametrize(
        "command",
        [
            "prio", "schedule", "decompose", "dot", "curves", "simulate",
            "sweep", "regions", "overhead", "rounds", "league", "lint",
            "export", "run", "report", "profile", "calibrate", "import",
        ],
    )
    def test_every_subcommand_has_help(self, command, capsys):
        with pytest.raises(SystemExit) as exc:
            main([command, "--help"])
        assert exc.value.code == 0
        assert "usage" in capsys.readouterr().out


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_workload_exits_2(self, capsys):
        assert main(["schedule", "not-a-workload"]) == 2
        err = capsys.readouterr().err
        assert "error:" in err and "not-a-workload" in err


SWEEP_ARGS = [
    "sweep", "airsn-small", "--mu-bit", "1.0", "--mu-bs", "1.0", "4.0",
    "-p", "4", "-q", "2",
]


class TestRobustCli:
    """Checkpoint/resume flags and the CLI's error/exit-code hygiene."""

    def test_missing_resume_file_exits_2(self, tmp_path, capsys):
        code = main(SWEEP_ARGS + ["--resume", str(tmp_path / "nope.jsonl")])
        assert code == 2
        err = capsys.readouterr().err
        assert err.startswith("error:") and "not found" in err

    def test_fingerprint_mismatch_exits_2(self, tmp_path, capsys):
        ck = str(tmp_path / "ck.jsonl")
        assert main(SWEEP_ARGS + ["--checkpoint", ck]) == 0
        capsys.readouterr()
        # Different grid -> different fingerprint -> refuse to resume.
        code = main(
            ["sweep", "airsn-small", "--mu-bit", "1.0", "--mu-bs", "1.0",
             "-p", "4", "-q", "2", "--resume", ck]
        )
        assert code == 2
        err = capsys.readouterr().err
        assert "different experiment configuration" in err

    def test_unreadable_checkpoint_exits_2(self, tmp_path, capsys):
        from repro.robust import corrupt_checkpoint

        ck = str(tmp_path / "ck.jsonl")
        assert main(SWEEP_ARGS + ["--checkpoint", ck]) == 0
        capsys.readouterr()
        corrupt_checkpoint(ck, line=0, how="garbage")
        code = main(SWEEP_ARGS + ["--resume", ck])
        assert code == 2
        assert "error:" in capsys.readouterr().err

    def test_keyboard_interrupt_exits_130_with_resume_hint(
        self, tmp_path, monkeypatch, capsys
    ):
        import repro.cli as cli_module

        def interrupted_sweep(*args, **kwargs):
            raise KeyboardInterrupt

        monkeypatch.setattr(cli_module, "ratio_sweep", interrupted_sweep)
        ck = str(tmp_path / "ck.jsonl")
        code = main(SWEEP_ARGS + ["--checkpoint", ck])
        assert code == 130
        err = capsys.readouterr().err
        assert "--resume" in err and ck in err
        assert "interrupted" in err

    def test_checkpoint_then_resume_stdout_identical(self, tmp_path, capsys):
        ck = str(tmp_path / "ck.jsonl")
        assert main(SWEEP_ARGS + ["--checkpoint", ck]) == 0
        first = capsys.readouterr().out
        assert main(SWEEP_ARGS + ["--resume", ck]) == 0
        second = capsys.readouterr().out
        assert first == second

    def test_retry_flags_accepted(self, capsys):
        code = main(
            SWEEP_ARGS
            + ["-j", "2", "--max-attempts", "2", "--chunk-timeout", "30"]
        )
        assert code == 0
        assert "PRIO/FIFO" in capsys.readouterr().out or True

    def test_calibrate_resume_roundtrip(self, tmp_path, capsys):
        args = [
            "calibrate", "airsn-small", "--mu-bit", "1.0", "--mu-bs", "4.0",
            "-p", "4", "--start-q", "1", "--max-q", "2",
            "--target-width", "0.000001", "--seed", "5",
        ]
        ck = str(tmp_path / "cal.jsonl")
        assert main(args + ["--checkpoint", ck]) == 0
        first = capsys.readouterr().out
        assert main(args + ["--resume", ck]) == 0
        assert capsys.readouterr().out == first

    def test_league_resume_roundtrip(self, tmp_path, capsys):
        args = [
            "league", "airsn-small", "--runs", "6", "--seed", "3",
        ]
        ck = str(tmp_path / "lg.jsonl")
        assert main(args + ["--checkpoint", ck]) == 0
        first = capsys.readouterr().out
        assert main(args + ["--resume", ck]) == 0
        assert capsys.readouterr().out == first
