"""Subprocess smoke tests: every CLI subcommand end-to-end.

The in-process suite (``tests/test_cli.py``) exercises command logic via
``main()``; this one runs ``python -m repro.cli`` as a real child process
— argv parsing, imports, exit codes, stdout/stderr framing and artifact
schemas — on tiny workloads, so a packaging or import-order regression
cannot hide behind the in-process harness.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys

import pytest

REPO_SRC = os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")

FIG3 = """\
JOB a a.sub
JOB b b.sub
JOB c c.sub
JOB d d.sub
JOB e e.sub
PARENT a CHILD b
PARENT c CHILD d e
"""

TINY = ["--mu-bit", "1.0", "--mu-bs", "4.0"]


def run_cli(*args, cwd=None):
    env = dict(os.environ)
    env["PYTHONPATH"] = REPO_SRC + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    return subprocess.run(
        [sys.executable, "-m", "repro.cli", *map(str, args)],
        capture_output=True,
        text=True,
        env=env,
        cwd=cwd,
        timeout=300,
    )


@pytest.fixture
def fig3_file(tmp_path):
    path = tmp_path / "IV.dag"
    path.write_text(FIG3)
    for job in "abcde":
        (tmp_path / f"{job}.sub").write_text(
            "executable = /bin/true\nqueue\n"
        )
    return path


def test_prio(fig3_file):
    proc = run_cli("prio", fig3_file, "-v")
    assert proc.returncode == 0, proc.stderr
    assert "5 jobs prioritized" in proc.stdout
    assert 'jobpriority="5"' in fig3_file.read_text()


def test_schedule(fig3_file):
    proc = run_cli("schedule", fig3_file, "-1")
    assert proc.returncode == 0, proc.stderr
    assert proc.stdout.split() == ["c", "a", "b", "d", "e"]


def test_schedule_with_cache_dir(fig3_file, tmp_path):
    store = tmp_path / "cache"
    first = run_cli("schedule", fig3_file, "--cache-dir", store)
    second = run_cli("schedule", fig3_file, "--cache-dir", store)
    third = run_cli("schedule", fig3_file, "--no-cache")
    assert first.returncode == second.returncode == third.returncode == 0
    assert first.stdout == second.stdout == third.stdout
    [entry] = store.glob("schedule-*.json")
    payload = json.loads(entry.read_text())
    assert payload["schema"] == 1
    assert payload["algorithm"] == "prio"
    assert payload["n"] == 5
    assert sorted(payload["schedule"]) == list(range(5))


def test_decompose():
    proc = run_cli("decompose", "airsn-small")
    assert proc.returncode == 0, proc.stderr
    assert "building blocks" in proc.stdout
    assert "families:" in proc.stdout


def test_dot(fig3_file, tmp_path):
    out = tmp_path / "fig3.dot"
    proc = run_cli("dot", fig3_file, "-o", out)
    assert proc.returncode == 0, proc.stderr
    text = out.read_text()
    assert text.startswith("digraph") and "->" in text


def test_regions():
    proc = run_cli(
        "regions", "airsn-small", "--mu-bit", "1.0",
        "--mu-bs", "2.0", "8.0", "-p", "4", "-q", "2",
    )
    assert proc.returncode == 0, proc.stderr
    assert "advantage regions" in proc.stdout.lower() or proc.stdout.strip()


def test_curves():
    proc = run_cli("curves", "airsn-small")
    assert proc.returncode == 0, proc.stderr
    assert "airsn-small" in proc.stdout


def test_simulate():
    proc = run_cli("simulate", "airsn-small", *TINY, "--seed", "1")
    assert proc.returncode == 0, proc.stderr
    for line in ("execution time", "stalling probability", "utilization"):
        assert line in proc.stdout


def test_sweep_with_cache_and_outputs(tmp_path):
    csv = tmp_path / "cells.csv"
    js = tmp_path / "cells.json"
    args = (
        "sweep", "airsn-small", "--mu-bit", "1.0", "--mu-bs", "2.0", "8.0",
        "-p", "4", "-q", "2", "--csv", csv, "--json", js,
    )
    plain = run_cli(*args)
    cached = run_cli(*args, "--cache-dir", tmp_path / "store")
    assert plain.returncode == 0, plain.stderr
    assert cached.returncode == 0, cached.stderr
    assert plain.stdout == cached.stdout  # byte-identical render
    assert "mu_BIT" in plain.stdout
    rows = csv.read_text().splitlines()
    assert rows[0].startswith("workload,")
    assert len(rows) == 1 + 2 * 3  # header + one row per (cell, metric)
    payload = json.loads(js.read_text())
    assert payload["workload"] == "airsn-small"
    assert len(payload["rows"]) == 2 * 3  # one row per (cell, metric)


def test_calibrate():
    proc = run_cli(
        "calibrate", "airsn-small", *TINY,
        "--target-width", "10.0", "-p", "3", "--max-q", "2",
    )
    assert proc.returncode == 0, proc.stderr
    assert "calibration: airsn-small" in proc.stdout


def test_overhead():
    proc = run_cli("overhead", "airsn-small")
    assert proc.returncode == 0, proc.stderr
    assert "airsn-small" in proc.stdout


def test_export_then_lint(tmp_path):
    target = tmp_path / "flow"
    proc = run_cli("export", "airsn-small", target)
    assert proc.returncode == 0, proc.stderr
    [dagfile] = target.glob("*.dag")

    lint = run_cli("lint", dagfile, "--check-jsdfs")
    assert lint.returncode == 0, lint.stderr


def test_run_executes_a_workflow(fig3_file, tmp_path):
    (fig3_file.parent / "a.sub").write_text(
        "executable = /usr/bin/touch\narguments = $(JOB).out\nqueue\n"
    )
    run = run_cli("run", fig3_file, "--prioritize", "-j", "2")
    assert run.returncode == 0, run.stderr
    assert "completed successfully" in run.stdout
    assert (fig3_file.parent / "a.out").is_file()


def test_lint_reports_errors(tmp_path):
    bad = tmp_path / "bad.dag"
    bad.write_text("JOB a a.sub\nPARENT a CHILD ghost\n")
    proc = run_cli("lint", bad)
    assert proc.returncode == 1
    assert "ghost" in proc.stdout


def test_league():
    proc = run_cli("league", "airsn-small", *TINY, "--runs", "4")
    assert proc.returncode == 0, proc.stderr
    for entrant in ("prio", "prio-topological", "random", "fifo"):
        assert entrant in proc.stdout
    assert "baseline" in proc.stdout


def test_rounds():
    proc = run_cli("rounds", "airsn-small", "--batch-sizes", "1", "8")
    assert proc.returncode == 0, proc.stderr
    assert "deterministic rounds" in proc.stdout


def test_report_with_telemetry_and_cache(tmp_path):
    telemetry = tmp_path / "telemetry.jsonl"
    out = tmp_path / "report.txt"
    proc = run_cli(
        "report", "airsn-small", "--mu-bit", "1.0", "--mu-bs", "4.0",
        "-p", "4", "-q", "2", "-o", out,
        "--telemetry", telemetry, "--cache-dir", tmp_path / "store",
    )
    assert proc.returncode == 0, proc.stderr
    assert "prio reproduction report" in out.read_text()
    records = [json.loads(line) for line in telemetry.read_text().splitlines()]
    assert all(record["schema"] == 1 for record in records)
    kinds = {record["kind"] for record in records}
    assert {"run", "replication", "cell", "stage"} <= kinds
    replications = [r for r in records if r["kind"] == "replication"]
    assert len(replications) == 2 * 4 * 2  # 2 policies x p*q, one cell
    assert {"workload", "policy", "rep", "execution_time"} <= set(
        replications[0]
    )


def test_profile():
    proc = run_cli("profile", "-w", "airsn-small", "--runs", "2")
    assert proc.returncode == 0, proc.stderr
    assert "total" in proc.stdout


def test_sweep_resume_roundtrip(tmp_path):
    ckpt = tmp_path / "sweep.ckpt"
    args = (
        "sweep", "airsn-small", "--mu-bit", "1.0", "--mu-bs", "2.0", "8.0",
        "-p", "4", "-q", "2",
    )
    first = run_cli(*args, "--checkpoint", ckpt)
    assert first.returncode == 0, first.stderr
    resumed = run_cli(*args, "--resume", ckpt)
    assert resumed.returncode == 0, resumed.stderr
    assert resumed.stdout == first.stdout  # bit-identical resumed output
    assert "completed unit(s) on file" in resumed.stderr


def test_unknown_workload_exits_2():
    proc = run_cli("schedule", "not-a-workload")
    assert proc.returncode == 2
    assert proc.stderr.startswith("error:")


def test_missing_resume_exits_2(tmp_path):
    proc = run_cli(
        "sweep", "airsn-small", "--mu-bit", "1.0", "--mu-bs", "2.0",
        "-p", "4", "-q", "2", "--resume", tmp_path / "nope.ckpt",
    )
    assert proc.returncode == 2
    assert "error:" in proc.stderr


def test_help_exits_0():
    proc = run_cli("--help")
    assert proc.returncode == 0
    assert "subcommand" in proc.stdout or "usage" in proc.stdout
