"""Golden regression tests: exact expected outputs for small cases.

These pin down behaviour that the paper states verbatim (Fig. 3) plus a
few stable small-scale outputs, so refactors cannot silently change the
scheduler's decisions.
"""

import numpy as np

from repro.core.prio import prio_schedule
from repro.core.tool import prioritize_dagman
from repro.dagman.parser import parse_dagman_text
from repro.theory.eligibility import eligibility_profile
from repro.workloads.airsn import airsn

FIG3_INPUT = """\
JOB a a.sub
JOB b b.sub
JOB c c.sub
JOB d d.sub
JOB e e.sub
PARENT a CHILD b
PARENT c CHILD d e
"""

FIG3_GOLDEN = """\
JOB a a.sub
JOB b b.sub
JOB c c.sub
JOB d d.sub
JOB e e.sub
PARENT a CHILD b
PARENT c CHILD d e
VARS a jobpriority="4"
VARS b jobpriority="3"
VARS c jobpriority="5"
VARS d jobpriority="2"
VARS e jobpriority="1"
"""


class TestFig3Golden:
    def test_instrumented_file_byte_exact(self):
        dagman = parse_dagman_text(FIG3_INPUT)
        prioritize_dagman(dagman)
        assert dagman.render() == FIG3_GOLDEN


class TestAirsnGolden:
    """AIRSN width 4 — small enough to pin the entire schedule."""

    def test_schedule_labels(self):
        dag = airsn(4)
        result = prio_schedule(dag)
        labels = [dag.label(u) for u in result.schedule]
        # Handle first, then fringes, covers, joins, final sink.
        assert labels[:21] == [f"prep{i:02d}" for i in range(21)]
        assert labels[21:25] == [f"hdr{i:04d}" for i in range(4)]
        assert labels[25:29] == [f"snr{i:04d}" for i in range(4)]
        assert labels[29] == "collect1"
        assert labels[30:34] == [f"smooth{i:04d}" for i in range(4)]
        assert labels[34] == "collect2"

    def test_eligibility_profile_values(self):
        dag = airsn(4)
        result = prio_schedule(dag)
        profile = eligibility_profile(dag, result.schedule)
        # Constant 5 through the handle (4 banked fringes + 1 frontier),
        # then the documented drain pattern.
        assert profile[:21].tolist() == [5] * 21
        assert profile[-1] == 0

    def test_priorities_of_landmarks(self):
        dag = airsn(4)
        result = prio_schedule(dag)
        n = dag.n
        assert result.priorities[dag.id_of("prep00")] == n
        assert result.priorities[dag.id_of("prep20")] == n - 20
        assert result.priorities[dag.id_of("collect2")] == 1


class TestSimulatorGolden:
    """One pinned simulation: exact metric values under a fixed seed."""

    def test_exact_result_fixed_seed(self):
        from repro.sim.engine import SimParams, make_policy, simulate

        dag = airsn(4)
        rng = np.random.default_rng(20060429)
        result = simulate(
            dag, make_policy("fifo"), SimParams(mu_bit=1.0, mu_bs=2.0), rng
        )
        again = simulate(
            dag,
            make_policy("fifo"),
            SimParams(mu_bit=1.0, mu_bs=2.0),
            np.random.default_rng(20060429),
        )
        assert result == again
        assert result.n_jobs == 35
        assert 0 < result.utilization <= 1
