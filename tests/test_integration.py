"""Cross-module integration tests: the full pipeline on real workloads."""

import numpy as np
import pytest

from repro.analysis.eligibility_curves import eligibility_curves
from repro.analysis.sweep import SweepConfig, ratio_sweep
from repro.core.prio import prio_schedule
from repro.core.tool import prioritize_dagman_file
from repro.dag.validate import is_valid_schedule
from repro.dagman.parser import parse_dagman_file
from repro.dagman.writer import dag_to_dagman, write_dagman_file
from repro.sim.engine import SimParams, make_policy, simulate
from repro.theory.eligibility import eligibility_profile
from repro.workloads.airsn import airsn
from repro.workloads.inspiral import inspiral
from repro.workloads.montage import montage
from repro.workloads.sdss import sdss


class TestDagmanRoundTripThroughScheduler:
    """Serialize a workload to a DAGMan file, run the tool on the file,
    and confirm the priorities equal the in-memory pipeline's."""

    def test_airsn_file_level_equals_api_level(self, tmp_path):
        dag = airsn(12)
        path = tmp_path / "airsn.dag"
        write_dagman_file(dag_to_dagman(dag), path)
        tool_result = prioritize_dagman_file(path)
        api_result = prio_schedule(dag)
        api_priorities = {
            dag.label(u): api_result.priorities[u] for u in range(dag.n)
        }
        assert tool_result.priorities == api_priorities

    def test_instrumented_file_reparses_with_priorities(self, tmp_path):
        dag = airsn(6)
        path = tmp_path / "a.dag"
        write_dagman_file(dag_to_dagman(dag), path)
        prioritize_dagman_file(path)
        reparsed = parse_dagman_file(path)
        assert reparsed.get_priority("prep00") is not None
        assert reparsed.to_dag().n == dag.n


class TestScheduleThenSimulate:
    def test_prio_improves_airsn_execution(self):
        dag = airsn(25)
        order = prio_schedule(dag).schedule
        params = SimParams(mu_bit=1.0, mu_bs=8.0)
        prio_t, fifo_t = [], []
        for seed in range(10):
            rng = np.random.default_rng(seed)
            prio_t.append(
                simulate(dag, make_policy("oblivious", order=order), params, rng).execution_time
            )
            rng = np.random.default_rng(seed)
            fifo_t.append(
                simulate(dag, make_policy("fifo"), params, rng).execution_time
            )
        assert np.mean(prio_t) < np.mean(fifo_t)

    def test_equal_performance_with_huge_batches(self):
        # Paper: with very large batches execution degenerates to BFS and
        # the schedules tie (ratio ~ 1).
        dag = airsn(15)
        order = prio_schedule(dag).schedule
        params = SimParams(mu_bit=1.0, mu_bs=4096.0)
        diffs = []
        for seed in range(8):
            rng = np.random.default_rng(seed)
            a = simulate(dag, make_policy("oblivious", order=order), params, rng)
            rng = np.random.default_rng(seed)
            b = simulate(dag, make_policy("fifo"), params, rng)
            diffs.append(a.execution_time - b.execution_time)
        assert abs(np.mean(diffs)) < 0.5


class TestWorkloadEligibility:
    """Fig. 4's qualitative claim on each scaled-down scientific dag."""

    @pytest.mark.parametrize(
        "factory,name",
        [
            (lambda: airsn(40), "airsn"),
            (lambda: inspiral(n_segments=32, n_groups=8), "inspiral"),
            (lambda: montage(8, 8, 4), "montage"),
            (lambda: sdss(n_fields=60, n_catalogs=12), "sdss"),
        ],
    )
    def test_prio_never_worse_on_average(self, factory, name):
        dag = factory()
        c = eligibility_curves(dag, name)
        assert c.mean_difference >= 0
        assert c.fraction_nonnegative > 0.9

    @pytest.mark.parametrize(
        "factory",
        [
            lambda: airsn(30),
            lambda: inspiral(n_segments=24, n_groups=6),
            lambda: montage(6, 6, 4),
            lambda: sdss(n_fields=40, n_catalogs=8),
        ],
    )
    def test_prio_valid_on_all_workloads(self, factory):
        dag = factory()
        res = prio_schedule(dag)
        assert is_valid_schedule(dag, res.schedule)
        profile = eligibility_profile(dag, res.schedule)
        assert profile[-1] == 0


class TestSweepHeadline:
    def test_airsn_midrange_advantage(self):
        """The paper's qualitative sweep story on a scaled AIRSN: PRIO wins
        in the mid-batch regime and ties for huge batches."""
        dag = airsn(40)
        order = prio_schedule(dag).schedule
        cfg = SweepConfig(
            mu_bits=(1.0,), mu_bss=(8.0, 4096.0), p=8, q=3, seed=5
        )
        sweep = ratio_sweep(dag, order, cfg, "airsn-40")
        mid = sweep.cell(1.0, 8.0).ratios["execution_time"]
        huge = sweep.cell(1.0, 4096.0).ratios["execution_time"]
        assert mid.median < 0.97
        assert abs(huge.median - 1.0) < 0.1
        assert mid.median < huge.median
