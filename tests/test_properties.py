"""Property-based tests (hypothesis) over the core invariants.

These are the library's contract statements:

* prio always emits a valid topological order, for any dag;
* eligibility profiles are bounded by the brute-force envelope;
* the decomposition partitions the non-sinks and its superdag is acyclic;
* the priority relation is a well-defined [0, 1] quantity with r = 1 on the
  pour-first split;
* the simulator conserves jobs and is deterministic under a fixed seed.
"""

from __future__ import annotations

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.decompose import decompose
from repro.core.fifo import fifo_schedule
from repro.core.prio import prio_schedule
from repro.dag.graph import Dag
from repro.dag.transitive import find_shortcuts, remove_shortcuts, transitive_closure_sets
from repro.dag.validate import is_valid_schedule
from repro.sim.engine import SimParams, make_policy, simulate
from repro.theory.eligibility import eligibility_profile
from repro.theory.ic_optimal import max_eligibility
from repro.theory.priority import priority_over

# ---------------------------------------------------------------------------
# Strategies
# ---------------------------------------------------------------------------


@st.composite
def dags(draw, max_n: int = 12) -> Dag:
    """Random dags: pick n, then a subset of the upper-triangular arcs."""
    n = draw(st.integers(min_value=0, max_value=max_n))
    pairs = [(i, j) for i in range(n) for j in range(i + 1, n)]
    arcs = draw(
        st.lists(st.sampled_from(pairs), unique=True, max_size=len(pairs))
        if pairs
        else st.just([])
    )
    return Dag(n, arcs)


@st.composite
def profiles(draw, max_len: int = 8) -> list[int]:
    """Plausible eligibility profiles: non-negative, E(0) >= 1."""
    length = draw(st.integers(min_value=1, max_value=max_len))
    values = draw(
        st.lists(
            st.integers(min_value=0, max_value=9),
            min_size=length,
            max_size=length,
        )
    )
    values[0] = max(values[0], 1)
    return values


COMMON = settings(
    max_examples=60, suppress_health_check=[HealthCheck.too_slow], deadline=None
)

# ---------------------------------------------------------------------------
# Scheduling properties
# ---------------------------------------------------------------------------


@COMMON
@given(dags())
def test_prio_schedule_always_valid(dag):
    assert is_valid_schedule(dag, prio_schedule(dag).schedule)


@COMMON
@given(dags())
def test_fifo_schedule_always_valid(dag):
    assert is_valid_schedule(dag, fifo_schedule(dag))


@COMMON
@given(dags(max_n=9))
def test_profiles_bounded_by_envelope(dag):
    envelope = max_eligibility(dag)
    for schedule in (prio_schedule(dag).schedule, fifo_schedule(dag)):
        profile = eligibility_profile(dag, schedule)
        assert (profile <= envelope).all()
        assert profile[0] == envelope[0]


@COMMON
@given(dags())
def test_priorities_are_a_permutation(dag):
    res = prio_schedule(dag)
    assert sorted(res.priorities) == list(range(1, dag.n + 1))


# ---------------------------------------------------------------------------
# Transitive reduction properties
# ---------------------------------------------------------------------------


@COMMON
@given(dags())
def test_shortcut_removal_is_sound_and_complete(dag):
    reduced, removed = remove_shortcuts(dag)
    assert find_shortcuts(reduced) == []
    assert reduced.narcs + len(removed) == dag.narcs
    assert transitive_closure_sets(reduced) == transitive_closure_sets(dag)


# ---------------------------------------------------------------------------
# Decomposition properties
# ---------------------------------------------------------------------------


@COMMON
@given(dags())
def test_decomposition_partitions_nonsinks(dag):
    reduced, _ = remove_shortcuts(dag)
    dec = decompose(reduced)
    scheduled = [u for c in dec.components for u in c.nonsinks]
    assert sorted(scheduled) == reduced.non_sinks()
    # superdag arcs point forward in detachment order => acyclic
    for i, kids in enumerate(dec.super_children):
        assert all(i < j for j in kids)


# ---------------------------------------------------------------------------
# Priority relation properties
# ---------------------------------------------------------------------------


@COMMON
@given(profiles(), profiles())
def test_priority_in_unit_interval(a, b):
    r = priority_over(a, b)
    assert 0.0 <= r <= 1.0


@COMMON
@given(profiles())
def test_priority_against_trivial_block_is_defined(a):
    # A single-job block ([1]) never constrains the pour-first split badly.
    assert 0.0 <= priority_over(a, [1]) <= 1.0


# ---------------------------------------------------------------------------
# Simulator properties
# ---------------------------------------------------------------------------


@settings(max_examples=25, deadline=None)
@given(
    dags(max_n=10),
    st.floats(min_value=0.05, max_value=10.0),
    st.floats(min_value=1.0, max_value=64.0),
    st.integers(min_value=0, max_value=2**32 - 1),
)
def test_simulation_invariants(dag, mu_bit, mu_bs, seed):
    params = SimParams(mu_bit=mu_bit, mu_bs=mu_bs)

    def once():
        rng = np.random.default_rng(seed)
        return simulate(dag, make_policy("fifo"), params, rng)

    result = once()
    assert result.n_jobs == dag.n
    if dag.n:
        assert result.execution_time > 0
        assert 0 < result.utilization <= 1.0
        assert 0.0 <= result.stalling_probability <= 1.0
        assert result.requests_until_last_assignment >= dag.n
    assert once() == result  # determinism
