"""Property-based tests over the extension modules.

Invariants covered:

* the ≻ᵣ priority relation behaves like the theory claims (the exact ≻ is
  transitive; r never leaves [0, 1]; r(A,A) = 1 for monotone profiles);
* batched execution partitions any dag into precedence-valid rounds and
  never beats the work/depth lower bound;
* the simulator conserves jobs under churn and rollover;
* splice flattening preserves job counts and dependency reachability.
"""

from __future__ import annotations

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.dag.graph import Dag
from repro.sim.engine import SimParams, make_policy, simulate
from repro.theory.batched import batched_execution, min_rounds
from repro.theory.priority import has_priority, priority_over

COMMON = settings(
    max_examples=50, suppress_health_check=[HealthCheck.too_slow], deadline=None
)


@st.composite
def dags(draw, max_n: int = 10) -> Dag:
    n = draw(st.integers(min_value=0, max_value=max_n))
    pairs = [(i, j) for i in range(n) for j in range(i + 1, n)]
    arcs = draw(
        st.lists(st.sampled_from(pairs), unique=True, max_size=len(pairs))
        if pairs
        else st.just([])
    )
    return Dag(n, arcs)


@st.composite
def profiles(draw, max_len: int = 6) -> list[int]:
    length = draw(st.integers(min_value=1, max_value=max_len))
    values = draw(
        st.lists(
            st.integers(min_value=0, max_value=6),
            min_size=length,
            max_size=length,
        )
    )
    values[0] = max(values[0], 1)
    return values


# ---------------------------------------------------------------------------
# Priority relation
# ---------------------------------------------------------------------------


@st.composite
def block_profiles(draw):
    """Eligibility profiles of real bipartite blocks under IC-optimal
    schedules — the domain on which the theory proves ≻ transitive.
    (Arbitrary vectors break transitivity: [1,0] ≻ [1] ≻ [1,1] but
    [1,0] ⊁ [1,1]; [1,0] is not a profile of any block.)"""
    from repro.theory.bipartite_exact import exact_bipartite_schedule
    from repro.theory.eligibility import partial_profile

    s = draw(st.integers(min_value=1, max_value=4))
    t = draw(st.integers(min_value=1, max_value=4))
    parent_sets = [
        draw(
            st.sets(
                st.integers(min_value=0, max_value=s - 1),
                min_size=1,
                max_size=s,
            )
        )
        for _ in range(t)
    ]
    arcs = [(p, s + j) for j, ps in enumerate(parent_sets) for p in ps]
    dag = Dag(s + t, arcs)
    order = exact_bipartite_schedule(dag)
    if order is None:
        # No IC-optimal schedule: outside the theorem's scope; resample
        # via hypothesis' assume.
        from hypothesis import assume

        assume(False)
    return partial_profile(dag, order).tolist()


@settings(max_examples=40, deadline=None,
          suppress_health_check=[HealthCheck.too_slow, HealthCheck.filter_too_much])
@given(block_profiles(), block_profiles(), block_profiles())
def test_exact_priority_is_transitive(a, b, c):
    # Theorem of [16]: ≻ is transitive over blocks with IC-optimal
    # schedules; verify empirically on real block profiles.
    if has_priority(a, b) and has_priority(b, c):
        assert has_priority(a, c)


@COMMON
@given(st.integers(min_value=1, max_value=6), st.integers(min_value=0, max_value=5))
def test_priority_self_linear_ramp(length, base):
    # E(x) = base+1 + x (each step frees one new job): self-priority 1.
    ramp = [base + 1 + x for x in range(length + 1)]
    assert priority_over(ramp, ramp) == 1.0


@COMMON
@given(profiles(), profiles())
def test_priority_antisymmetry_of_strictness(a, b):
    # If A strictly dominates (r(A,B) = 1 > r(B,A)), the reverse strict
    # domination cannot hold simultaneously.
    r_ab = priority_over(a, b)
    r_ba = priority_over(b, a)
    assert not (r_ab > r_ba and r_ba > r_ab)


# ---------------------------------------------------------------------------
# Batched execution
# ---------------------------------------------------------------------------


@COMMON
@given(dags(), st.integers(min_value=1, max_value=8))
def test_batched_rounds_partition_and_bound(dag, b):
    order = dag.topological_order()
    rounds = batched_execution(dag, order, b)
    flat = [u for batch in rounds for u in batch]
    assert sorted(flat) == list(range(dag.n))
    assert all(1 <= len(batch) <= b for batch in rounds)
    assert len(rounds) >= min_rounds(dag, b)
    round_of = {u: i for i, batch in enumerate(rounds) for u in batch}
    for u, v in dag.arcs():
        assert round_of[u] < round_of[v]


# ---------------------------------------------------------------------------
# Simulator extensions
# ---------------------------------------------------------------------------


@settings(max_examples=20, deadline=None)
@given(
    dags(max_n=8),
    st.floats(min_value=0.0, max_value=0.5),
    st.booleans(),
    st.integers(min_value=0, max_value=2**31 - 1),
)
def test_simulation_conserves_jobs_under_extensions(dag, p_fail, rollover, seed):
    params = SimParams(
        mu_bit=0.5, mu_bs=4.0, failure_prob=p_fail, rollover=rollover
    )
    rng = np.random.default_rng(seed)
    result = simulate(dag, make_policy("fifo"), params, rng)
    assert result.n_jobs == dag.n
    if dag.n:
        assert result.execution_time > 0
        assert result.requests_until_last_assignment >= dag.n
    if p_fail == 0.0:
        assert result.n_failures == 0


# ---------------------------------------------------------------------------
# Splice flattening
# ---------------------------------------------------------------------------


@st.composite
def inner_workflows(draw):
    """A small flat DagmanFile with random chain structure."""
    from repro.dagman.model import DagmanFile, JobDecl

    n = draw(st.integers(min_value=1, max_value=5))
    f = DagmanFile()
    names = [f"j{i}" for i in range(n)]
    for name in names:
        f.jobs[name] = JobDecl(name=name, submit_file=f"{name}.sub")
        f.lines.append(f"JOB {name} {name}.sub")
    pairs = [(a, b) for i, a in enumerate(names) for b in names[i + 1:]]
    for a, b in draw(
        st.lists(st.sampled_from(pairs), unique=True, max_size=len(pairs))
        if pairs
        else st.just([])
    ):
        f.arcs.append((a, b))
        f.lines.append(f"PARENT {a} CHILD {b}")
    return f


@COMMON
@given(inner_workflows(), inner_workflows())
def test_splice_flattening_preserves_structure(inner_a, inner_b):
    from repro.dagman.parser import parse_dagman_text
    from repro.dagman.splice import flatten_dagman

    outer = parse_dagman_text(
        "JOB pre pre.sub\n"
        "SPLICE sa a.dag\n"
        "SPLICE sb b.dag\n"
        "JOB post post.sub\n"
        "PARENT pre CHILD sa\n"
        "PARENT sa CHILD sb\n"
        "PARENT sb CHILD post\n"
    )
    flat = flatten_dagman(
        outer, {"a.dag": inner_a, "b.dag": inner_b}.__getitem__
    )
    assert len(flat.jobs) == 2 + len(inner_a.jobs) + len(inner_b.jobs)
    dag = flat.to_dag()
    pre, post = dag.id_of("pre"), dag.id_of("post")
    # Everything is sandwiched between pre and post.
    assert dag.descendants(pre) == set(range(dag.n)) - {pre}
    assert dag.ancestors(post) == set(range(dag.n)) - {post}
