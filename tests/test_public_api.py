"""Public-API surface tests: everything advertised resolves and works.

A downstream user's first contact is ``from repro import ...``; these
tests pin the advertised names, their importability, and the promise that
every ``__all__`` entry of every subpackage actually exists.
"""

import importlib
import inspect

import pytest

import repro


PACKAGES = [
    "repro",
    "repro.dag",
    "repro.dagman",
    "repro.theory",
    "repro.core",
    "repro.sim",
    "repro.stats",
    "repro.workloads",
    "repro.analysis",
    "repro.obs",
]


class TestAllEntriesResolve:
    @pytest.mark.parametrize("name", PACKAGES)
    def test_package_all(self, name):
        module = importlib.import_module(name)
        assert hasattr(module, "__all__") and module.__all__
        for entry in module.__all__:
            assert hasattr(module, entry), f"{name}.{entry} missing"

    @pytest.mark.parametrize("name", PACKAGES)
    def test_all_is_sorted_unique(self, name):
        module = importlib.import_module(name)
        entries = list(module.__all__)
        assert len(entries) == len(set(entries))


class TestTopLevelWorkflow:
    """The README quickstart, executed literally."""

    def test_quickstart_snippet(self):
        from repro import DagBuilder, fifo_schedule, prio_schedule

        b = DagBuilder()
        b.add_dependency("a", "b")
        b.add_dependency("c", "d")
        b.add_dependency("c", "e")
        dag = b.build()
        result = prio_schedule(dag)
        assert [dag.label(u) for u in result.schedule] == list("cabde")
        assert result.priority_of("c") == 5
        assert fifo_schedule(dag) == [
            dag.id_of(x) for x in "acbde"
        ]

    def test_workload_one_liner(self):
        dag = repro.airsn(width=10)
        assert dag.n == 21 + 30 + 2

    def test_version(self):
        assert repro.__version__ == "1.0.0"


class TestDocstrings:
    """Every public callable carries a docstring (deliverable e)."""

    @pytest.mark.parametrize("name", PACKAGES)
    def test_public_objects_documented(self, name):
        module = importlib.import_module(name)
        undocumented = []
        for entry in module.__all__:
            obj = getattr(module, entry)
            if inspect.isfunction(obj) or inspect.isclass(obj):
                if not (obj.__doc__ or "").strip():
                    undocumented.append(f"{name}.{entry}")
        assert not undocumented, f"missing docstrings: {undocumented}"

    def test_module_docstrings(self):
        import pkgutil

        missing = []
        for pkg_name in PACKAGES:
            pkg = importlib.import_module(pkg_name)
            missing.extend(
                f"{pkg_name}.{m.name}"
                for m in pkgutil.iter_modules(getattr(pkg, "__path__", []))
                if not (
                    importlib.import_module(f"{pkg_name}.{m.name}").__doc__
                    or ""
                ).strip()
            )
        assert not missing, f"modules without docstrings: {missing}"
