"""Test package."""
