"""Tests for the faithful theoretical algorithm (Sec. 2.2)."""

import numpy as np
import pytest

from repro.core.prio import prio_schedule
from repro.dag.builders import chain, complete_bipartite, compose_series, fork_join
from repro.dag.graph import Dag
from repro.dag.validate import is_valid_schedule
from repro.theory.algorithm import theoretical_algorithm
from repro.theory.eligibility import eligibility_profile
from repro.theory.families import cycle_dag, fig2_catalog, m_dag, n_dag, w_dag
from repro.theory.ic_optimal import is_ic_optimal


class TestSuccessCases:
    @pytest.mark.parametrize("inst", fig2_catalog(), ids=lambda i: i.name)
    def test_catalog_blocks(self, inst):
        result = theoretical_algorithm(inst.dag)
        assert result.success
        assert is_ic_optimal(inst.dag, result.schedule)

    @pytest.mark.parametrize(
        "dag_fn",
        [
            lambda: chain(6),
            lambda: fork_join(4),
            lambda: complete_bipartite(3, 3),
            lambda: m_dag(3, 2).dag,
            lambda: n_dag(6).dag,
            lambda: cycle_dag(6).dag,
        ],
    )
    def test_uniform_compositions(self, dag_fn):
        d = dag_fn()
        result = theoretical_algorithm(d)
        assert result.success, result.reason
        assert is_valid_schedule(d, result.schedule)
        if d.n <= 14:
            assert is_ic_optimal(d, result.schedule)

    def test_fig3_example(self, fig3_dag):
        result = theoretical_algorithm(fig3_dag)
        assert result.success
        assert is_ic_optimal(fig3_dag, result.schedule)

    def test_empty_and_single(self):
        assert theoretical_algorithm(Dag(0, [])).schedule == []
        single = theoretical_algorithm(Dag(1, []))
        assert single.success and single.schedule == [0]

    def test_isolated_nodes_do_not_poison_the_sort(self):
        # Regression: isolated sinks form pseudo-blocks whose [1] profile
        # ties with everything under eq. (1); including them in the stable
        # sort made the comparator intransitive and emitted {0->2} before
        # {3->4, 3->5}, losing IC optimality.
        d = Dag(7, [(0, 2), (3, 4), (3, 5)])
        result = theoretical_algorithm(d)
        assert result.success
        assert is_ic_optimal(d, result.schedule)
        # The two-child block must run its source first.
        assert result.schedule[0] == 3

    def test_shortcuts_handled(self, diamond_with_shortcut):
        result = theoretical_algorithm(diamond_with_shortcut)
        assert result.success
        assert is_valid_schedule(diamond_with_shortcut, result.schedule)


class TestFailureCases:
    def test_non_bipartite_decomposition_fails_step2(self):
        # The crossed unequal-depth forks: a->p->t, b->t, b->q->u, a->u.
        d = Dag(6, [(0, 2), (2, 4), (1, 4), (1, 3), (3, 5), (0, 5)])
        result = theoretical_algorithm(d)
        assert not result.success
        assert result.failed_step == 2
        assert "bipartite" in result.reason

    def test_incomparable_blocks_fail_step4(self):
        # W(2,2) composed with M(2,2): the interface K(3,3) block and the
        # W block violate eq. (1) in both directions (at x=1, y=3 the
        # pour-into-W split loses eligibility), so the theoretical
        # algorithm fails at step 4 even though the heuristic schedules
        # the dag fine — exactly the theory's acknowledged limitation.
        d = compose_series(w_dag(2, 2).dag, m_dag(2, 2).dag)
        result = theoretical_algorithm(d)
        assert not result.success
        assert result.failed_step == 4
        heuristic = prio_schedule(d)
        assert is_valid_schedule(d, heuristic.schedule)

    def test_width_limit_fails_step3(self):
        d = complete_bipartite(6, 2)
        result = theoretical_algorithm(d, width_limit=4)
        assert not result.success
        assert result.failed_step == 3
        assert "certification limit" in result.reason

    def test_heuristic_transcends_every_failure(self, rng):
        """The paper's point: wherever the theory fails, prio delivers."""
        from tests.conftest import random_small_dag

        failures = 0
        for _ in range(30):
            d = random_small_dag(rng, max_n=10)
            result = theoretical_algorithm(d)
            heuristic = prio_schedule(d)
            assert is_valid_schedule(d, heuristic.schedule)
            if result.success:
                assert is_ic_optimal(d, result.schedule)
            else:
                failures += 1
        assert failures > 0  # random dags do defeat the theory sometimes


class TestAgreement:
    def test_heuristic_matches_theory_quality_when_theory_works(self, rng):
        """Where the theoretical algorithm succeeds, the heuristic's
        schedule must be IC optimal too (the 'graceful' property)."""
        from tests.conftest import random_small_dag

        checked = 0
        for _ in range(30):
            d = random_small_dag(rng, max_n=9)
            result = theoretical_algorithm(d)
            if not result.success:
                continue
            checked += 1
            heuristic = prio_schedule(d, exact_bipartite_limit=10)
            theory_profile = eligibility_profile(d, result.schedule)
            heuristic_profile = eligibility_profile(d, heuristic.schedule)
            assert (heuristic_profile >= theory_profile).all() or (
                is_ic_optimal(d, heuristic.schedule)
            )
        assert checked > 0
