"""Tests for the deterministic batched-execution regime."""

import pytest

from repro.core.fifo import fifo_schedule
from repro.core.prio import prio_schedule
from repro.dag.builders import chain, complete_bipartite, fork_join
from repro.dag.graph import Dag
from repro.theory.batched import (
    batched_execution,
    min_rounds,
    rounds_needed,
    rounds_profile,
)
from repro.workloads.airsn import airsn


class TestBatchedExecution:
    def test_rounds_partition_jobs(self, fig3_dag):
        rounds = batched_execution(fig3_dag, list(range(5)), 2)
        flat = [u for batch in rounds for u in batch]
        assert sorted(flat) == list(range(5))

    def test_rounds_respect_precedence(self, diamond):
        rounds = batched_execution(diamond, [0, 1, 2, 3], 4)
        round_of = {}
        for i, batch in enumerate(rounds):
            for u in batch:
                round_of[u] = i
        for u, v in diamond.arcs():
            assert round_of[u] < round_of[v]

    def test_batch_size_one_is_sequential(self, fig3_dag):
        rounds = batched_execution(fig3_dag, list(range(5)), 1)
        assert len(rounds) == 5
        assert all(len(b) == 1 for b in rounds)

    def test_huge_batches_are_bfs_levels(self, diamond):
        rounds = batched_execution(diamond, [0, 1, 2, 3], 100)
        assert rounds == [[0], [1, 2], [3]]

    def test_order_matters(self, fig3_dag):
        # PRIO order (c first) fills a batch of 3 at round 2; FIFO can't.
        prio = prio_schedule(fig3_dag).schedule
        fifo = fifo_schedule(fig3_dag)
        assert rounds_needed(fig3_dag, prio, 3) <= rounds_needed(
            fig3_dag, fifo, 3
        )

    def test_validation(self, diamond):
        with pytest.raises(ValueError, match="batch size"):
            batched_execution(diamond, [0, 1, 2, 3], 0)
        with pytest.raises(ValueError, match="permutation"):
            batched_execution(diamond, [0, 1], 2)
        with pytest.raises(ValueError, match="permutation"):
            batched_execution(diamond, [0, 0, 1, 2], 2)

    def test_empty_dag(self):
        assert batched_execution(Dag(0, []), [], 3) == []


class TestMinRounds:
    def test_chain_bound_is_depth(self):
        assert min_rounds(chain(5), 100) == 5

    def test_wide_bound_is_work(self):
        d = complete_bipartite(10, 10)
        assert min_rounds(d, 5) == 4  # 20 jobs / 5 per round

    def test_empty(self):
        assert min_rounds(Dag(0, []), 3) == 0

    def test_bound_is_actually_a_bound(self, rng):
        from tests.conftest import random_small_dag

        for _ in range(15):
            d = random_small_dag(rng, max_n=12)
            if d.n == 0:
                continue
            for b in (1, 2, 4):
                order = prio_schedule(d).schedule
                assert rounds_needed(d, order, b) >= min_rounds(d, b)

    def test_validation(self):
        with pytest.raises(ValueError):
            min_rounds(chain(3), 0)


class TestDeterministicSweepAnalog:
    """PRIO vs FIFO round counts mirror the Fig. 6 story without noise."""

    def test_airsn_midrange_advantage(self):
        d = airsn(60)
        prio = prio_schedule(d).schedule
        fifo = fifo_schedule(d)
        batch_sizes = [1, 4, 16, 64, 1024]
        prio_rounds = rounds_profile(d, prio, batch_sizes)
        fifo_rounds = rounds_profile(d, fifo, batch_sizes)
        # Never worse...
        assert all(p <= f for p, f in zip(prio_rounds, fifo_rounds))
        # ...strictly better somewhere in the mid-range...
        assert any(
            p < f for p, f in zip(prio_rounds[1:4], fifo_rounds[1:4])
        )
        # ...and tied at the degenerate extremes (paper's explanation).
        assert prio_rounds[0] == fifo_rounds[0] == d.n
        assert prio_rounds[-1] == fifo_rounds[-1]

    def test_prio_hits_lower_bound_on_airsn_with_one_worker(self):
        d = airsn(10)
        order = prio_schedule(d).schedule
        assert rounds_needed(d, order, 1) == d.n

    def test_fork_join_rounds(self):
        d = fork_join(8)
        order = prio_schedule(d).schedule
        assert rounds_needed(d, order, 8) == 3  # source, 8-wide fork, sink
