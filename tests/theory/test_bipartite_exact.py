"""Tests for the exact bipartite IC-optimal solver (extension)."""

import itertools

import numpy as np
import pytest

from repro.dag.builders import complete_bipartite
from repro.dag.graph import Dag
from repro.theory.bipartite_exact import (
    bipartite_envelope,
    coverage_profile,
    exact_bipartite_schedule,
)
from repro.theory.eligibility import eligibility_profile
from repro.theory.families import cycle_dag, m_dag, n_dag, w_dag
from repro.theory.ic_optimal import is_ic_optimal, max_eligibility


def random_bipartite(rng, max_sources=6, max_sinks=6) -> Dag:
    s = int(rng.integers(1, max_sources + 1))
    t = int(rng.integers(1, max_sinks + 1))
    arcs = []
    for j in range(t):
        parents = rng.choice(s, size=int(rng.integers(1, s + 1)), replace=False)
        arcs.extend((int(p), s + j) for p in parents)
    return Dag(s + t, arcs)


class TestCoverageProfile:
    def test_complete_bipartite(self):
        profile = coverage_profile(complete_bipartite(3, 4))
        assert profile.tolist() == [0, 0, 0, 4]

    def test_w_dag(self):
        # (3,2)-W: x sources free x-1 shared + endpoint privates...
        profile = coverage_profile(w_dag(3, 2).dag)
        # one source frees its private sink (endpoints have one).
        assert profile[0] == 0
        assert profile[-1] == 4
        assert (np.diff(profile) >= 0).all()

    def test_monotone(self, rng):
        for _ in range(15):
            d = random_bipartite(rng)
            profile = coverage_profile(d)
            assert (np.diff(profile) >= 0).all()
            assert profile[-1] == len(d.sinks())

    def test_limit_guard(self):
        with pytest.raises(ValueError, match="limit"):
            coverage_profile(complete_bipartite(25, 2))

    def test_rejects_non_bipartite(self):
        with pytest.raises(ValueError, match="bipartite"):
            coverage_profile(Dag(3, [(0, 1), (1, 2)]))


class TestEnvelope:
    def test_matches_brute_force(self, rng):
        for _ in range(20):
            d = random_bipartite(rng, max_sources=5, max_sinks=5)
            assert bipartite_envelope(d).tolist() == max_eligibility(d).tolist()

    def test_scales_past_brute_force(self):
        # 10 sources, 40 sinks: ideal enumeration would be hopeless.
        d = complete_bipartite(10, 40)
        env = bipartite_envelope(d)
        assert env[0] == 10 and env[10] == 40 and env[-1] == 0


class TestExactSchedule:
    @pytest.mark.parametrize(
        "inst",
        [w_dag(3, 2), w_dag(2, 3), m_dag(2, 3), n_dag(6), cycle_dag(6)],
        ids=lambda i: i.name,
    )
    def test_agrees_with_catalog_families(self, inst):
        order = exact_bipartite_schedule(inst.dag)
        assert order is not None
        schedule = order + inst.dag.sinks()
        assert is_ic_optimal(inst.dag, schedule)

    def test_certified_on_random(self, rng):
        found = 0
        for _ in range(25):
            d = random_bipartite(rng, max_sources=5, max_sinks=5)
            order = exact_bipartite_schedule(d)
            if order is not None:
                found += 1
                assert is_ic_optimal(d, order + d.sinks())
            else:
                # No source order attains the envelope -> no IC-optimal
                # schedule at all (sinks only ever reduce eligibility).
                env = max_eligibility(d)
                for perm in itertools.permutations(d.sources()):
                    profile = eligibility_profile(d, list(perm) + d.sinks())
                    assert not np.array_equal(profile, env)
        assert found > 0

    def test_none_case_exists(self):
        # A dag where the coverage optima cannot be chained: F*(2) = 2
        # needs {a, b} (two private sinks each... construct explicitly).
        # Sinks: u{a}, v{a}, w{b,c}, x{b,d}, y{c,d}.
        # F*(1) = 2 via {a}; F*(2): {a,b}=2, {b,c}=... compute and assert
        # consistency rather than a hand-derived value.
        d = Dag(
            9,
            [
                (0, 4), (0, 5),          # a frees two private sinks
                (1, 6), (2, 6),          # w{b,c}
                (1, 7), (3, 7),          # x{b,d}
                (2, 8), (3, 8),          # y{c,d}
            ],
        )
        order = exact_bipartite_schedule(d)
        general = max_eligibility(d)
        if order is None:
            # cross-check against the general searcher
            from repro.theory.ic_optimal import find_ic_optimal_schedule

            assert find_ic_optimal_schedule(d) is None
        else:
            assert is_ic_optimal(d, order + d.sinks())

    def test_integration_with_prio(self, rng):
        """prio with the exact extension is never worse pointwise."""
        from repro.core.prio import prio_schedule

        for _ in range(8):
            d = random_bipartite(rng, max_sources=6, max_sinks=8)
            base = prio_schedule(d)
            exact = prio_schedule(d, exact_bipartite_limit=10)
            p_base = eligibility_profile(d, base.schedule)
            p_exact = eligibility_profile(d, exact.schedule)
            assert p_exact.sum() >= p_base.sum()

    def test_exact_family_label(self):
        # An irregular bipartite block that no catalog family matches.
        d = Dag(6, [(0, 3), (0, 4), (1, 4), (1, 5), (2, 5), (0, 5)])
        from repro.core.prio import prio_schedule

        result = prio_schedule(d, exact_bipartite_limit=8)
        assert "<exact-bipartite>" in result.families_used
