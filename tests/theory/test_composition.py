"""Tests for identified composition — the theory's assembly operator."""

import pytest

from repro.core.decompose import decompose
from repro.core.prio import prio_schedule
from repro.dag.builders import compose_identified, fork, join
from repro.dag.validate import is_valid_schedule
from repro.theory.algorithm import theoretical_algorithm
from repro.theory.families import clique_dag, m_dag, w_dag
from repro.theory.ic_optimal import is_ic_optimal


class TestComposeIdentified:
    def test_chain_of_forks_and_joins(self):
        # fork(3): 1 source, 3 sinks; join(3): 3 sources, 1 sink.
        d = compose_identified(fork(3), join(3))
        assert d.n == 1 + 3 + 1  # sinks identified with sources
        assert len(d.sources()) == 1 and len(d.sinks()) == 1

    def test_mismatched_counts_rejected(self):
        with pytest.raises(ValueError, match="identify"):
            compose_identified(fork(3), join(2))

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            compose_identified()

    def test_single_piece_identity(self):
        d = w_dag(2, 2).dag
        assert compose_identified(d).n == d.n

    def test_node_count_formula(self):
        a, b = w_dag(2, 2).dag, m_dag(2, 2).dag  # w: 2+3, m: 3+2
        d = compose_identified(a, b)
        assert d.n == a.n + b.n - 3  # 3 identified nodes


class TestDecompositionRecoversPieces:
    def test_w_w_chain(self):
        # W(3,2) has 4 sinks; W(4,...) has 4 sources when s=4.
        a = w_dag(3, 2).dag   # 3 sources, 4 sinks
        b = w_dag(4, 2).dag   # 4 sources, 5 sinks
        d = compose_identified(a, b)
        dec = decompose(d)
        assert dec.n_components == 2
        assert all(c.is_bipartite for c in dec.components)
        sizes = sorted(len(c.nonsinks) for c in dec.components)
        assert sizes == [3, 4]

    def test_w_m_tower(self):
        a = w_dag(2, 3).dag   # 2 sources, 5 sinks
        b = m_dag(2, 3).dag   # 5 sources, 2 sinks
        d = compose_identified(a, b)
        dec = decompose(d)
        assert dec.n_components == 2
        assert all(c.is_bipartite for c in dec.components)


class TestSchedulingComposedTowers:
    @pytest.mark.parametrize(
        "pieces",
        [
            (w_dag(2, 2).dag, m_dag(2, 2).dag),   # 3 interface nodes
            (clique_dag(2).dag, clique_dag(2).dag),
            (w_dag(3, 2).dag, w_dag(4, 2).dag),
        ],
        ids=["W-M", "K-K", "W-W"],
    )
    def test_heuristic_schedules_towers(self, pieces):
        d = compose_identified(*pieces)
        result = prio_schedule(d)
        assert is_valid_schedule(d, result.schedule)
        if d.n <= 14:
            # Where brute force is feasible, demand near-envelope quality.
            from repro.theory.eligibility import eligibility_profile
            from repro.theory.ic_optimal import max_eligibility

            profile = eligibility_profile(d, result.schedule)
            envelope = max_eligibility(d)
            assert profile.sum() >= 0.9 * envelope.sum()

    def test_theoretical_algorithm_on_identified_kk(self):
        # Towers of cliques glued by identification: the blocks are the
        # cliques themselves, ≻-comparable, superdag a chain.
        d = compose_identified(clique_dag(3).dag, clique_dag(3).dag)
        result = theoretical_algorithm(d)
        assert result.success
        assert is_ic_optimal(d, result.schedule)
