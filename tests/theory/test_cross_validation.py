"""Cross-validation: every scheduler against every oracle, at volume.

Four independent implementations make claims about the same objects:

* `max_eligibility`      — exhaustive envelope (ideal enumeration);
* `bipartite_envelope`   — coverage-profile envelope (bipartite only);
* `find_ic_optimal_schedule` / `exact_bipartite_schedule` — exact solvers;
* `theoretical_algorithm` / `prio_schedule` — the paper's algorithms.

Randomized at volume, their pairwise consistency is the strongest
correctness evidence the suite has.
"""

import numpy as np
import pytest

from repro.core.prio import prio_schedule
from repro.dag.graph import Dag
from repro.dag.validate import is_valid_schedule
from repro.theory.algorithm import theoretical_algorithm
from repro.theory.bipartite_exact import (
    bipartite_envelope,
    exact_bipartite_schedule,
)
from repro.theory.eligibility import eligibility_profile
from repro.theory.ic_optimal import (
    find_ic_optimal_schedule,
    is_ic_optimal,
    max_eligibility,
)

from tests.conftest import random_small_dag


def random_bipartite(rng, max_sources=5, max_sinks=5):
    s = int(rng.integers(1, max_sources + 1))
    t = int(rng.integers(1, max_sinks + 1))
    arcs = []
    for j in range(t):
        parents = rng.choice(
            s, size=int(rng.integers(1, s + 1)), replace=False
        )
        arcs.extend((int(p), s + j) for p in parents)
    return Dag(s + t, arcs)


class TestEnvelopeAgreement:
    @pytest.mark.parametrize("seed", range(4))
    def test_bipartite_envelopes_agree(self, seed):
        rng = np.random.default_rng(seed)
        for _ in range(20):
            d = random_bipartite(rng)
            assert (
                bipartite_envelope(d).tolist()
                == max_eligibility(d).tolist()
            )

    @pytest.mark.parametrize("seed", range(4))
    def test_solvers_agree_on_existence(self, seed):
        rng = np.random.default_rng(100 + seed)
        for _ in range(15):
            d = random_bipartite(rng, max_sources=4, max_sinks=4)
            general = find_ic_optimal_schedule(d)
            bip = exact_bipartite_schedule(d)
            assert (general is None) == (bip is None)
            if bip is not None:
                assert is_ic_optimal(d, bip + d.sinks())


class TestAlgorithmAgreement:
    @pytest.mark.parametrize("seed", range(6))
    def test_theory_success_implies_heuristic_quality(self, seed):
        rng = np.random.default_rng(200 + seed)
        for _ in range(12):
            d = random_small_dag(rng, max_n=9)
            theory = theoretical_algorithm(d)
            heuristic = prio_schedule(d, exact_bipartite_limit=10)
            assert is_valid_schedule(d, heuristic.schedule)
            if theory.success:
                assert is_ic_optimal(d, theory.schedule)
                # The heuristic with the exact extension matches the
                # theory's schedule quality on theory-friendly dags.
                t_sum = eligibility_profile(d, theory.schedule).sum()
                h_sum = eligibility_profile(d, heuristic.schedule).sum()
                assert h_sum >= 0.95 * t_sum

    @pytest.mark.parametrize("seed", range(4))
    def test_heuristic_never_below_fifo_on_average(self, seed):
        from repro.core.fifo import fifo_schedule

        rng = np.random.default_rng(300 + seed)
        margins = []
        for _ in range(15):
            d = random_small_dag(rng, max_n=12)
            h = eligibility_profile(d, prio_schedule(d).schedule).sum()
            f = eligibility_profile(d, fifo_schedule(d)).sum()
            margins.append(h - f)
        # Individual dags may tie; the aggregate must not be negative.
        assert sum(margins) >= 0

    @pytest.mark.parametrize("seed", range(3))
    def test_knob_combinations_all_valid(self, seed):
        rng = np.random.default_rng(400 + seed)
        for _ in range(6):
            d = random_small_dag(rng, max_n=11)
            for combine in ("greedy", "topological"):
                for catalog in (True, False):
                    for limit in (0, 8):
                        result = prio_schedule(
                            d,
                            combine=combine,
                            use_catalog=catalog,
                            exact_bipartite_limit=limit,
                        )
                        assert is_valid_schedule(d, result.schedule)
