"""Tests for eligibility profiles."""

import numpy as np
import pytest

from repro.dag.builders import chain, complete_bipartite, fork, fork_join
from repro.dag.graph import Dag
from repro.theory.eligibility import (
    count_eligible,
    eligibility_profile,
    eligible_after,
    partial_profile,
)


class TestEligibilityProfile:
    def test_chain_is_always_one(self):
        profile = eligibility_profile(chain(4), [0, 1, 2, 3])
        assert profile.tolist() == [1, 1, 1, 1, 0]

    def test_fork_grows_then_drains(self):
        d = fork(3)
        profile = eligibility_profile(d, [0, 1, 2, 3])
        assert profile.tolist() == [1, 3, 2, 1, 0]

    def test_starts_at_source_count(self, rng):
        from tests.conftest import random_small_dag

        for _ in range(10):
            d = random_small_dag(rng)
            order = d.topological_order()
            profile = eligibility_profile(d, order)
            assert profile[0] == len(d.sources())
            assert profile[-1] == 0

    def test_order_matters(self):
        # fig3: executing c first exposes two children at once.
        d = Dag(5, [(0, 1), (2, 3), (2, 4)])
        fifo = eligibility_profile(d, [0, 2, 1, 3, 4])
        prio = eligibility_profile(d, [2, 0, 1, 3, 4])
        assert prio[1] == 3 and fifo[1] == 2

    def test_rejects_wrong_length(self, diamond):
        with pytest.raises(ValueError, match="length"):
            eligibility_profile(diamond, [0, 1])

    def test_rejects_precedence_violation(self, diamond):
        with pytest.raises(ValueError, match="before"):
            eligibility_profile(diamond, [1, 0, 2, 3])

    def test_rejects_duplicates(self, diamond):
        with pytest.raises(ValueError, match="twice"):
            eligibility_profile(diamond, [0, 1, 1, 3])

    def test_dtype_is_integer(self, diamond):
        profile = eligibility_profile(diamond, [0, 1, 2, 3])
        assert profile.dtype == np.int64


class TestPartialProfile:
    def test_bipartite_block(self):
        # K(2,2): executing both sources frees both sinks.
        d = complete_bipartite(2, 2)
        profile = partial_profile(d, [0, 1])
        assert profile.tolist() == [2, 1, 2]

    def test_empty_prefix(self, diamond):
        profile = partial_profile(diamond, [])
        assert profile.tolist() == [1]

    def test_fork_join_nonsinks(self):
        d = fork_join(2)  # 0 -> {1,2} -> 3
        profile = partial_profile(d, [0, 1, 2])
        assert profile.tolist() == [1, 2, 1, 1]

    def test_prefix_must_respect_precedence(self, diamond):
        with pytest.raises(ValueError):
            partial_profile(diamond, [1])


class TestEligibleAfter:
    def test_initially_sources(self, diamond):
        assert eligible_after(diamond, set()) == [0]

    def test_after_source(self, diamond):
        assert eligible_after(diamond, {0}) == [1, 2]

    def test_rejects_non_closed_set(self, diamond):
        with pytest.raises(ValueError, match="closed"):
            eligible_after(diamond, {1})

    def test_count_matches_list(self, rng):
        from tests.conftest import random_small_dag

        for _ in range(10):
            d = random_small_dag(rng)
            order = d.topological_order()
            executed = set(order[: d.n // 2])
            assert count_eligible(d, executed) == len(eligible_after(d, executed))
