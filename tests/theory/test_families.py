"""Certification of the Fig. 2 catalog: every family schedule is IC optimal.

These tests play the role of the theory papers' proofs: for each family and
a range of small parameters, the explicit source order must attain the
brute-force eligibility envelope at every step.
"""

import pytest

from repro.theory.families import (
    bipartite_dag,
    clique_dag,
    cycle_dag,
    fig2_catalog,
    m_dag,
    n_dag,
    w_dag,
)
from repro.theory.ic_optimal import is_ic_optimal


def certify(instance):
    assert is_ic_optimal(instance.dag, instance.full_schedule()), (
        f"{instance.name}: catalog schedule is not IC optimal"
    )


class TestWDags:
    @pytest.mark.parametrize("s,c", [(1, 2), (2, 2), (3, 2), (1, 5), (2, 3), (3, 3), (4, 2)])
    def test_ic_optimal(self, s, c):
        certify(w_dag(s, c))

    def test_shape(self):
        inst = w_dag(3, 2)
        d = inst.dag
        assert len(d.sources()) == 3
        assert len(d.sinks()) == 3 * 1 + 1
        # Adjacent sources share exactly one sink.
        shared01 = set(d.children(0)) & set(d.children(1))
        shared12 = set(d.children(1)) & set(d.children(2))
        shared02 = set(d.children(0)) & set(d.children(2))
        assert len(shared01) == 1 and len(shared12) == 1 and not shared02

    def test_degenerate_c1_is_join(self):
        inst = w_dag(3, 1)
        assert len(inst.dag.sinks()) == 1
        certify(inst)

    def test_validation(self):
        with pytest.raises(ValueError):
            w_dag(0, 2)


class TestMDags:
    @pytest.mark.parametrize("s,c", [(1, 5), (2, 5), (2, 2), (3, 2), (2, 3), (3, 3)])
    def test_ic_optimal(self, s, c):
        certify(m_dag(s, c))

    def test_shape(self):
        inst = m_dag(2, 5)
        d = inst.dag
        assert len(d.sources()) == 2 * 4 + 1 == 9
        assert len(d.sinks()) == 2
        # Consecutive sinks share exactly one parent.
        sinks = d.sinks()
        assert len(set(d.parents(sinks[0])) & set(d.parents(sinks[1]))) == 1

    def test_mirror_of_w(self):
        m = m_dag(3, 2).dag
        w = w_dag(3, 2).dag
        assert sorted(m.reversed().arcs()) != []  # sanity
        assert m.n == w.n and m.narcs == w.narcs

    def test_validation(self):
        with pytest.raises(ValueError):
            m_dag(1, 0)


class TestNDags:
    @pytest.mark.parametrize("n", [4, 6, 8, 10])
    def test_ic_optimal(self, n):
        certify(n_dag(n))

    def test_fence_keeps_eligibility_flat(self):
        # Executing sources in order frees one sink each step: E stays k.
        from repro.theory.eligibility import partial_profile

        inst = n_dag(8)
        profile = partial_profile(inst.dag, inst.source_order)
        assert profile.tolist() == [4, 4, 4, 4, 4]

    def test_shape(self):
        d = n_dag(4).dag
        assert d.n == 4 and d.narcs == 3

    @pytest.mark.parametrize("bad", [3, 5, 2, 0])
    def test_validation(self, bad):
        with pytest.raises(ValueError):
            n_dag(bad)


class TestCycleDags:
    @pytest.mark.parametrize("n", [4, 6, 8, 10])
    def test_ic_optimal(self, n):
        certify(cycle_dag(n))

    def test_shape(self):
        d = cycle_dag(6).dag
        assert d.n == 6 and d.narcs == 6
        assert all(d.out_degree(u) == 2 for u in d.sources())
        assert all(d.in_degree(u) == 2 for u in d.sinks())

    @pytest.mark.parametrize("bad", [3, 5, 2])
    def test_validation(self, bad):
        with pytest.raises(ValueError):
            cycle_dag(bad)


class TestCliqueDags:
    @pytest.mark.parametrize("q", [1, 2, 3, 4])
    def test_ic_optimal(self, q):
        certify(clique_dag(q))

    def test_complete(self):
        d = clique_dag(3).dag
        assert d.narcs == 9

    def test_generalized_bipartite(self):
        certify(bipartite_dag(2, 4))
        certify(bipartite_dag(4, 2))

    def test_validation(self):
        with pytest.raises(ValueError):
            clique_dag(0)
        with pytest.raises(ValueError):
            bipartite_dag(1, 0)


class TestFig2Catalog:
    def test_exactly_the_papers_seven(self):
        names = [inst.name for inst in fig2_catalog()]
        assert names == [
            "(1,2)-W",
            "(2,2)-W",
            "(1,5)-M",
            "(2,5)-M",
            "3-Clique",
            "4-Cycle",
            "4-N",
        ]

    def test_all_certified(self):
        for inst in fig2_catalog():
            certify(inst)

    def test_full_schedule_is_sources_then_sinks(self):
        for inst in fig2_catalog():
            schedule = inst.full_schedule()
            k = len(inst.source_order)
            assert all(not inst.dag.is_sink(u) for u in schedule[:k])
            assert all(inst.dag.is_sink(u) for u in schedule[k:])
