"""Tests for the brute-force IC-optimality machinery."""

import numpy as np
import pytest

from repro.dag.builders import chain, complete_bipartite, fork, join
from repro.dag.graph import Dag
from repro.theory.eligibility import eligibility_profile
from repro.theory.ic_optimal import (
    admits_ic_optimal_schedule,
    find_ic_optimal_schedule,
    is_ic_optimal,
    max_eligibility,
)


class TestMaxEligibility:
    def test_chain(self):
        assert max_eligibility(chain(4)).tolist() == [1, 1, 1, 1, 0]

    def test_fork(self):
        assert max_eligibility(fork(3)).tolist() == [1, 3, 2, 1, 0]

    def test_join(self):
        assert max_eligibility(join(3)).tolist() == [3, 2, 1, 1, 0]

    def test_complete_bipartite(self):
        # No sink frees before all sources run.
        assert max_eligibility(complete_bipartite(3, 2)).tolist() == [
            3, 2, 1, 2, 1, 0,
        ]

    def test_envelope_dominates_any_schedule(self, rng):
        from tests.conftest import random_small_dag

        for _ in range(15):
            d = random_small_dag(rng, max_n=8)
            envelope = max_eligibility(d)
            profile = eligibility_profile(d, d.topological_order())
            assert (profile <= envelope).all()

    def test_empty_dag(self):
        assert max_eligibility(Dag(0, [])).tolist() == [0]

    def test_size_guard(self):
        with pytest.raises(ValueError, match="limit"):
            max_eligibility(chain(30))

    def test_size_guard_override(self):
        assert max_eligibility(chain(30), limit=30)[0] == 1


class TestIsIcOptimal:
    def test_chain_trivially_optimal(self):
        assert is_ic_optimal(chain(3), [0, 1, 2])

    def test_fig3_prio_schedule_optimal(self, fig3_dag):
        ids = {fig3_dag.label(u): u for u in range(5)}
        prio = [ids[x] for x in "cabde"]
        fifo = [ids[x] for x in "acbde"]
        assert is_ic_optimal(fig3_dag, prio)
        assert not is_ic_optimal(fig3_dag, fifo)


class TestFindSchedule:
    def test_finds_for_small_dags(self, rng):
        from tests.conftest import random_small_dag

        found = 0
        for _ in range(15):
            d = random_small_dag(rng, max_n=7)
            schedule = find_ic_optimal_schedule(d)
            if schedule is not None:
                assert is_ic_optimal(d, schedule)
                found += 1
        assert found > 0  # most random small dags do admit one

    def test_deterministic(self, fig3_dag):
        s1 = find_ic_optimal_schedule(fig3_dag)
        s2 = find_ic_optimal_schedule(fig3_dag)
        assert s1 == s2

    def test_known_non_ic_optimal_dag(self):
        # Two crossed unequal-depth fork-joins: a->p->t, b->t, b->q->u, a->u.
        # Executing a first caps E at the (b,q,p...) pattern; executing b
        # first is symmetric; no single schedule attains the envelope at
        # every step, so the theoretical algorithm must fail here.
        d = Dag(6, [(0, 2), (2, 4), (1, 4), (1, 3), (3, 5), (0, 5)])
        envelope = max_eligibility(d)
        schedule = find_ic_optimal_schedule(d)
        if schedule is not None:
            # If one exists it must be certified; either way the envelope
            # must dominate every valid schedule.
            assert is_ic_optimal(d, schedule)
        profile = eligibility_profile(d, d.topological_order())
        assert (profile <= envelope).all()

    def test_admits_alias(self, fig3_dag):
        assert admits_ic_optimal_schedule(fig3_dag)


class TestDagsWithoutIcOptimalSchedule:
    def _exhaustive_has_none(self, d):
        """Ground truth by enumerating all topological orders."""
        import itertools

        envelope = max_eligibility(d)
        for perm in itertools.permutations(range(d.n)):
            try:
                profile = eligibility_profile(d, list(perm))
            except ValueError:
                continue
            if (profile == envelope).all():
                return False
        return True

    def test_search_agrees_with_exhaustive(self, rng):
        from tests.conftest import random_small_dag

        seen_none = 0
        for _ in range(40):
            d = random_small_dag(rng, max_n=6)
            schedule = find_ic_optimal_schedule(d)
            if schedule is None:
                assert self._exhaustive_has_none(d)
                seen_none += 1
            else:
                assert is_ic_optimal(d, schedule)
        # Not asserted > 0: dags without IC-optimal schedules are rare at
        # this size; the dedicated case below guarantees coverage.

    def test_w_then_m_composition_is_searched_correctly(self):
        # (2,2)-W feeding a 2-join: a structured multi-level dag.
        d = Dag(
            6,
            [(0, 2), (0, 3), (1, 3), (1, 4), (2, 5), (3, 5)],
        )
        schedule = find_ic_optimal_schedule(d)
        if schedule is not None:
            assert is_ic_optimal(d, schedule)
