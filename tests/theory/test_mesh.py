"""Tests for mesh-structured computations ([17])."""

import pytest

from repro.core.prio import prio_schedule
from repro.dag.validate import is_valid_schedule
from repro.theory.eligibility import eligibility_profile
from repro.theory.ic_optimal import is_ic_optimal, max_eligibility
from repro.theory.mesh import (
    diagonal_schedule,
    mesh_dag,
    mesh_schedule,
    triangular_mesh_dag,
)


class TestMeshDag:
    def test_shape(self):
        d = mesh_dag(3, 4)
        assert d.n == 12
        assert d.sources() == [0]
        assert d.sinks() == [11]
        assert d.out_degree(0) == 2

    def test_labels(self):
        d = mesh_dag(2, 2)
        assert d.label(0) == "m0_0" and d.label(3) == "m1_1"

    def test_single_row_is_chain(self):
        d = mesh_dag(1, 5)
        assert d.narcs == 4

    def test_validation(self):
        with pytest.raises(ValueError):
            mesh_dag(0, 3)


class TestTriangularMesh:
    def test_size_is_triangle_number(self):
        assert triangular_mesh_dag(4).n == 10

    def test_frontier_grows(self):
        d = triangular_mesh_dag(5)
        schedule = diagonal_schedule(d)
        profile = eligibility_profile(d, schedule)
        # After each full diagonal the next one is entirely eligible:
        # eligibility climbs to the order of the mesh.
        assert profile.max() == 5

    def test_validation(self):
        with pytest.raises(ValueError):
            triangular_mesh_dag(0)


class TestDiagonalSchedule:
    @pytest.mark.parametrize(
        "r,c", [(2, 2), (2, 3), (3, 3), (4, 2), (2, 5), (5, 2), (3, 4)]
    )
    def test_mesh_schedule_ic_optimal(self, r, c):
        d = mesh_dag(r, c)
        schedule = mesh_schedule(r, c)
        assert is_valid_schedule(d, schedule)
        assert is_ic_optimal(d, schedule)

    @pytest.mark.parametrize("n", [2, 3])
    def test_square_plain_diagonals_ic_optimal(self, n):
        d = mesh_dag(n, n)
        assert is_ic_optimal(d, diagonal_schedule(d))

    @pytest.mark.parametrize("order", [2, 3, 4, 5])
    def test_triangular_diagonals_ic_optimal(self, order):
        d = triangular_mesh_dag(order)
        schedule = diagonal_schedule(d)
        assert is_ic_optimal(d, schedule)

    def test_all_three_algorithms_agree_on_meshes(self):
        # A mesh's diagonals are maximal connected bipartite blocks, so
        # the theoretical algorithm succeeds, and heuristic + theory +
        # the explicit diagonal order all attain the envelope.
        from repro.theory.algorithm import theoretical_algorithm

        d = mesh_dag(3, 3)
        theory = theoretical_algorithm(d)
        assert theory.success
        assert is_ic_optimal(d, theory.schedule)

        heuristic = prio_schedule(d)
        assert is_ic_optimal(d, heuristic.schedule)

    def test_envelope_matches_diagonals(self):
        d = mesh_dag(3, 3)
        envelope = max_eligibility(d)
        profile = eligibility_profile(d, diagonal_schedule(d))
        assert (profile == envelope).all()
