"""Tests for the >= / >=_r priority relations."""

import numpy as np
import pytest

from repro.theory.eligibility import partial_profile
from repro.theory.families import clique_dag, w_dag
from repro.theory.priority import (
    PriorityCache,
    has_priority,
    priority_matrix,
    priority_over,
)


def profile_of(instance):
    return partial_profile(instance.dag, instance.source_order)


def brute_force_priority(a, b):
    """Reference implementation: direct double loop over eq. (1)."""
    a = np.asarray(a, dtype=float)
    b = np.asarray(b, dtype=float)
    sa, sb = a.size - 1, b.size - 1
    best = np.inf
    for x in range(sa + 1):
        for y in range(sb + 1):
            lhs = a[x] + b[y]
            total = x + y
            into_a = min(sa, total)
            rhs = a[into_a] + b[total - into_a]
            if lhs > 0:
                best = min(best, rhs / lhs)
    return min(best, 1.0)


class TestPriorityOver:
    def test_range(self):
        r = priority_over([1, 2, 3], [3, 2, 1])
        assert 0.0 <= r <= 1.0

    def test_self_pair_at_zero_total_is_one_ratio(self):
        # r(A over A) can be < 1 when the profile has an interior hump.
        humped = [1, 3, 1]
        r = priority_over(humped, humped)
        assert r == pytest.approx(1 / 3)

    def test_flat_profile_self_priority_one(self):
        assert priority_over([2, 2, 2], [2, 2, 2]) == 1.0

    def test_matches_brute_force_random(self, rng):
        for _ in range(50):
            a = rng.integers(0, 6, size=int(rng.integers(1, 7))).tolist()
            b = rng.integers(0, 6, size=int(rng.integers(1, 7))).tolist()
            # ensure a plausible profile: E(0) >= 1 (a block has a source)
            a[0] = max(a[0], 1)
            b[0] = max(b[0], 1)
            assert priority_over(a, b) == pytest.approx(
                brute_force_priority(a, b)
            )

    def test_fig3_blocks(self):
        # Block {a,b}: E = [1, 1]; block {c,d,e}: E = [1, 2].
        assert priority_over([1, 2], [1, 1]) == 1.0
        assert priority_over([1, 1], [1, 2]) == pytest.approx(2 / 3)

    def test_trivial_profiles(self):
        assert priority_over([1], [1]) == 1.0
        assert priority_over([5], [1, 2, 3]) == pytest.approx(
            brute_force_priority([5], [1, 2, 3])
        )

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            priority_over([1, -1], [1])

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            priority_over([], [1])


class TestHasPriority:
    def test_exact_relation_on_catalog(self):
        # A wide clique pours all execution first: flat profile dominates.
        k3 = profile_of(clique_dag(3))
        w22 = profile_of(w_dag(2, 2))
        # At least one direction of the relation must hold with r = 1 or
        # the pair is simply incomparable; verify consistency with r.
        r_ab = priority_over(k3, w22)
        r_ba = priority_over(w22, k3)
        assert has_priority(k3, w22) == (r_ab >= 1.0 - 1e-12)
        assert has_priority(w22, k3) == (r_ba >= 1.0 - 1e-12)

    def test_reflexive_for_monotone_profiles(self):
        # Profiles that never dip admit r = 1 against themselves.
        assert has_priority([1, 2, 3], [1, 2, 3])


class TestPriorityMatrix:
    def test_diagonal_is_one(self):
        m = priority_matrix([[1, 2], [2, 1], [1, 1]])
        assert np.allclose(np.diag(m), 1.0)

    def test_entries_match_pairwise(self):
        profiles = [[1, 2], [2, 1], [1, 1, 2]]
        m = priority_matrix(profiles)
        for i in range(3):
            for j in range(3):
                if i != j:
                    assert m[i, j] == pytest.approx(
                        priority_over(profiles[i], profiles[j])
                    )


class TestPriorityCache:
    def test_caches_by_key(self):
        cache = PriorityCache()
        a, b = [1, 2], [2, 1]
        ka, kb = PriorityCache.key(a), PriorityCache.key(b)
        v1 = cache.priority(ka, a, kb, b)
        v2 = cache.priority(ka, a, kb, b)
        assert v1 == v2
        assert cache.hits == 1 and cache.misses == 1
        assert len(cache) == 1

    def test_direction_matters(self):
        cache = PriorityCache()
        a, b = [1, 1], [1, 2]
        ka, kb = PriorityCache.key(a), PriorityCache.key(b)
        assert cache.priority(ka, a, kb, b) != cache.priority(kb, b, ka, a)
        assert len(cache) == 2

    def test_key_is_content_based(self):
        assert PriorityCache.key([1, 2]) == PriorityCache.key(np.array([1, 2]))
