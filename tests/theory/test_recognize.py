"""Tests for the catalog recognizers."""

import pytest

from repro.dag.builders import chain, complete_bipartite
from repro.dag.graph import Dag
from repro.theory.eligibility import partial_profile
from repro.theory.families import clique_dag, cycle_dag, m_dag, n_dag, w_dag
from repro.theory.ic_optimal import is_ic_optimal
from repro.theory.recognize import recognize_bipartite_family


def _relabel(dag: Dag, perm: list[int]) -> Dag:
    """Permute node ids (perm[old] = new) to test label-independence."""
    inv = [0] * dag.n
    for old, new in enumerate(perm):
        inv[new] = old
    arcs = [(perm[u], perm[v]) for u, v in dag.arcs()]
    return Dag(dag.n, arcs)


def certify_recognition(dag: Dag, expected_family: str | None = None):
    rec = recognize_bipartite_family(dag)
    assert rec is not None, "family not recognized"
    if expected_family is not None:
        assert rec.family == expected_family
    schedule = list(rec.source_order) + dag.sinks()
    assert is_ic_optimal(dag, schedule), (
        f"recognized {rec.family} but its schedule is not IC optimal"
    )
    return rec


class TestRecognizeFamilies:
    @pytest.mark.parametrize("s,c", [(2, 2), (3, 2), (2, 3), (4, 2)])
    def test_w(self, s, c):
        certify_recognition(w_dag(s, c).dag, f"({s},{c})-W")

    @pytest.mark.parametrize("s,c", [(2, 5), (2, 2), (3, 2), (2, 3)])
    def test_m(self, s, c):
        certify_recognition(m_dag(s, c).dag, f"({s},{c})-M")

    @pytest.mark.parametrize("n", [4, 6, 8])
    def test_n(self, n):
        certify_recognition(n_dag(n).dag, f"{n}-N")

    @pytest.mark.parametrize("n", [6, 8, 10])
    def test_cycle(self, n):
        certify_recognition(cycle_dag(n).dag, f"{n}-Cycle")

    def test_4cycle_is_recognized_as_2clique(self):
        # The 4-Cycle IS the complete bipartite K(2,2); the complete
        # recognizer fires first.  Any source order is IC optimal.
        certify_recognition(cycle_dag(4).dag, "2-Clique")

    @pytest.mark.parametrize("q", [2, 3, 4])
    def test_clique(self, q):
        certify_recognition(clique_dag(q).dag, f"{q}-Clique")

    @pytest.mark.parametrize("a,b", [(1, 3), (3, 1), (2, 4)])
    def test_generalized_complete(self, a, b):
        certify_recognition(complete_bipartite(a, b), f"K({a},{b})")

    def test_1x1(self):
        certify_recognition(complete_bipartite(1, 1), "1-Clique")


class TestLabelIndependence:
    """Recognition must not depend on node numbering (isomorphism)."""

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_shuffled_w(self, seed, rng):
        d = w_dag(3, 2).dag
        perm = rng.permutation(d.n).tolist()
        certify_recognition(_relabel(d, perm), "(3,2)-W")

    @pytest.mark.parametrize("seed", [0, 1])
    def test_shuffled_m(self, seed, rng):
        d = m_dag(2, 3).dag
        perm = rng.permutation(d.n).tolist()
        certify_recognition(_relabel(d, perm), "(2,3)-M")

    @pytest.mark.parametrize("seed", [0, 1])
    def test_shuffled_n(self, seed, rng):
        d = n_dag(6).dag
        perm = rng.permutation(d.n).tolist()
        certify_recognition(_relabel(d, perm), "6-N")

    @pytest.mark.parametrize("seed", [0, 1])
    def test_shuffled_cycle(self, seed, rng):
        d = cycle_dag(8).dag
        perm = rng.permutation(d.n).tolist()
        certify_recognition(_relabel(d, perm), "8-Cycle")


class TestRejections:
    def test_chain_not_bipartite(self):
        assert recognize_bipartite_family(chain(3)) is None

    def test_disconnected_rejected(self):
        d = Dag(4, [(0, 1), (2, 3)])
        assert recognize_bipartite_family(d) is None

    def test_single_node_rejected(self):
        assert recognize_bipartite_family(Dag(1, [])) is None

    def test_unequal_source_degrees_not_w(self):
        # source 0 has 2 children, source 1 has 1; sharing one sink.
        d = Dag(4, [(0, 2), (0, 3), (1, 3)])
        rec = recognize_bipartite_family(d)
        # Not W/M/complete; it IS the 4-N zigzag.
        assert rec is not None and rec.family == "4-N"

    def test_sink_with_three_parents_only_complete(self):
        d = Dag(4, [(0, 3), (1, 3), (2, 3)])
        rec = recognize_bipartite_family(d)
        assert rec is not None and rec.family == "K(3,1)"

    def test_theta_shape_rejected(self):
        # Two sources sharing two sinks, plus private sinks: not W
        # (the shared count is 2), not complete, not a path/cycle.
        d = Dag(
            6,
            [(0, 2), (0, 3), (0, 4), (1, 2), (1, 3), (1, 5)],
        )
        assert recognize_bipartite_family(d) is None

    def test_star_of_sharing_rejected(self):
        # Three sources all sharing one central sink plus private sinks:
        # the sharing graph is a triangle, not a path.
        arcs = [(0, 3), (1, 3), (2, 3), (0, 4), (1, 5), (2, 6)]
        d = Dag(7, arcs)
        rec = recognize_bipartite_family(d)
        assert rec is None or rec.family.endswith(("W", "M")) is False


class TestRecognizedSchedulesMatchProfiles:
    def test_m_profile_completes_sinks_one_at_a_time(self):
        inst = m_dag(3, 2).dag
        rec = certify_recognition(inst, "(3,2)-M")
        profile = partial_profile(inst, rec.source_order)
        # After x sources, eligibility never drops below the flat optimum.
        assert min(profile.tolist()) >= 2
