"""Test package."""
