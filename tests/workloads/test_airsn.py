"""Tests for the AIRSN generator (including the Fig. 5 bottleneck)."""

import pytest

from repro.core.prio import prio_schedule
from repro.dag.validate import is_valid_schedule
from repro.workloads.airsn import AIRSN_HANDLE_LENGTH, airsn


class TestStructure:
    def test_paper_job_count(self):
        assert airsn(250).n == 773

    def test_job_count_formula(self):
        for w in (1, 5, 40):
            assert airsn(w).n == AIRSN_HANDLE_LENGTH + 3 * w + 2

    def test_sources_are_handle_start_plus_fringes(self):
        d = airsn(10)
        names = {d.label(u) for u in d.sources()}
        assert "prep00" in names
        assert sum(1 for n in names if n.startswith("hdr")) == 10
        assert len(names) == 11

    def test_single_final_sink(self):
        d = airsn(10)
        assert [d.label(u) for u in d.sinks()] == ["collect2"]

    def test_double_umbrella(self):
        d = airsn(10)
        assert d.out_degree(d.id_of("collect1")) == 10
        assert d.in_degree(d.id_of("collect1")) == 10
        assert d.in_degree(d.id_of("collect2")) == 10

    def test_fringe_feeds_exactly_its_fork_job(self):
        d = airsn(10)
        hdr3 = d.id_of("hdr0003")
        assert [d.label(c) for c in d.children(hdr3)] == ["snr0003"]

    def test_fork_job_has_two_parents(self):
        d = airsn(10)
        parents = {d.label(p) for p in d.parents(d.id_of("snr0002"))}
        assert parents == {"prep%02d" % (AIRSN_HANDLE_LENGTH - 1), "hdr0002"}

    def test_handle_is_a_chain(self):
        d = airsn(5)
        for i in range(AIRSN_HANDLE_LENGTH - 1):
            assert d.has_arc(d.id_of(f"prep{i:02d}"), d.id_of(f"prep{i + 1:02d}"))

    def test_validation(self):
        with pytest.raises(ValueError):
            airsn(0)
        with pytest.raises(ValueError):
            airsn(5, handle=0)


class TestFig5Bottleneck:
    def test_bottleneck_priority_is_753(self):
        """The black-framed job of Fig. 5 carries priority 753."""
        d = airsn(250)
        res = prio_schedule(d)
        bottleneck = d.id_of(f"prep{AIRSN_HANDLE_LENGTH - 1:02d}")
        assert res.priorities[bottleneck] == 753

    def test_handle_outranks_fringes(self):
        d = airsn(50)
        res = prio_schedule(d)
        lowest_handle = min(
            res.priorities[d.id_of(f"prep{i:02d}")]
            for i in range(AIRSN_HANDLE_LENGTH)
        )
        highest_fringe = max(
            res.priorities[d.id_of(f"hdr{i:04d}")] for i in range(50)
        )
        assert lowest_handle > highest_fringe

    def test_prio_schedule_valid(self):
        d = airsn(40)
        res = prio_schedule(d)
        assert is_valid_schedule(d, res.schedule)
