"""Tests for the real-world corpus generators (repro.workloads.corpus)."""

from __future__ import annotations

import pytest

from repro.dagman.importer import import_dagman_file, import_dagman_tree
from repro.dagman.lint import lint_dagman_tree
from repro.workloads.corpus import (
    CAX_ROOT,
    NIPYPE_ROOT,
    cax_tree,
    cax_workflow,
    nipype_tree,
    nipype_workflow,
    write_tree,
)
from repro.workloads.registry import get_workload


class TestNipypeTree:
    def test_job_count(self):
        # spec + subjects*depth + merge + report
        dag = nipype_workflow(subjects=3, depth=2)
        assert dag.n == 1 + 3 * 2 + 2

    def test_every_node_has_a_submit_file(self):
        tree = nipype_tree(subjects=2, depth=2)
        w = import_dagman_tree(tree, NIPYPE_ROOT)
        for meta in w.meta.values():
            assert meta.submit_file in tree

    def test_flat_layout_no_nesting(self):
        tree = nipype_tree()
        w = import_dagman_tree(tree, NIPYPE_ROOT)
        assert all(m.depth == 0 for m in w.meta.values())
        assert w.sources == (NIPYPE_ROOT,)

    def test_single_join_structure(self):
        dag = nipype_workflow(subjects=4, depth=3)
        # One source (specify_model), one sink (report).
        assert len(dag.sources()) == 1
        assert len(dag.sinks()) == 1

    def test_deterministic(self):
        assert nipype_tree(5, 3) == nipype_tree(5, 3)
        assert (
            nipype_workflow(5, 3).fingerprint()
            == nipype_workflow(5, 3).fingerprint()
        )

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            nipype_tree(subjects=0)
        with pytest.raises(ValueError):
            nipype_tree(depth=0)
        with pytest.raises(ValueError):
            nipype_tree(depth=99)


class TestCaxTree:
    def test_job_count(self):
        # stage_runlist + runs*(stage_in + chunks + merge + upload) + massive
        dag = cax_workflow(runs=3, chunks=2)
        assert dag.n == 1 + 3 * (2 + 3) + 1

    def test_nested_layout(self):
        tree = cax_tree(runs=2, chunks=2)
        w = import_dagman_tree(tree, CAX_ROOT)
        inner = [m for m in w.meta.values() if m.depth == 1]
        assert len(inner) == 2 * (2 + 3)
        assert {m.directory for m in inner} == {"run_0000", "run_0001"}

    def test_vars_flow_into_inner_jobs(self):
        tree = cax_tree(runs=2, chunks=1, pax_version="v9")
        w = import_dagman_tree(tree, CAX_ROOT)
        meta = w.meta["run_0001+chunk_000"]
        assert meta.vars == {"run": "1", "pax_version": "v9"}
        assert meta.submit_file == "process_v9.sub"
        assert meta.retries == 3

    def test_generated_tree_lints_clean_in_memory(self):
        assert lint_dagman_tree(cax_tree(2, 2), CAX_ROOT) == []
        assert lint_dagman_tree(nipype_tree(2, 2), NIPYPE_ROOT) == []

    def test_deterministic(self):
        assert cax_tree(4, 3) == cax_tree(4, 3)
        assert (
            cax_workflow(4, 3).fingerprint()
            == cax_workflow(4, 3).fingerprint()
        )

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            cax_tree(runs=0)
        with pytest.raises(ValueError):
            cax_tree(chunks=0)


class TestWriteTree:
    def test_on_disk_import_matches_in_memory(self, tmp_path):
        tree = cax_tree(runs=2, chunks=2)
        root = write_tree(tree, tmp_path)
        assert root == tmp_path / CAX_ROOT
        on_disk = import_dagman_file(root)
        in_memory = import_dagman_tree(tree, CAX_ROOT)
        assert on_disk.fingerprint() == in_memory.fingerprint()
        assert on_disk.render() == in_memory.render()

    def test_on_disk_tree_lints_clean(self, tmp_path):
        root = write_tree(cax_tree(runs=2, chunks=2), tmp_path)
        assert lint_dagman_tree(root) == []

    def test_rejects_tree_without_root(self, tmp_path):
        with pytest.raises(ValueError):
            write_tree({"readme.txt": "hi\n"}, tmp_path)


class TestRegistry:
    @pytest.mark.parametrize(
        "name", ["nipype-small", "nipype-medium", "cax-small", "cax-medium"]
    )
    def test_corpus_names_resolve(self, name):
        dag = get_workload(name)
        assert dag.n > 0
        assert dag.fingerprint() == get_workload(name).fingerprint()

    def test_medium_is_larger(self):
        assert (
            get_workload("nipype-medium").n > get_workload("nipype-small").n
        )
        assert get_workload("cax-medium").n > get_workload("cax-small").n
