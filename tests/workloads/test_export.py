"""Tests for workflow export."""

import pytest

from repro.core.tool import prioritize_dagman_file
from repro.dag.graph import Dag
from repro.dagman.parser import parse_dagman_file
from repro.workloads.airsn import airsn
from repro.workloads.export import export_workflow, stage_of


class TestStageOf:
    @pytest.mark.parametrize(
        "name,stage",
        [
            ("snr0042", "snr"),
            ("prep00", "prep"),
            ("insp2_0001", "insp2"),
            ("concat", "concat"),
            ("collect1", "collect"),
        ],
    )
    def test_examples(self, name, stage):
        assert stage_of(name) == stage


class TestExportWorkflow:
    def test_files_created(self, tmp_path):
        dag = airsn(5)
        dag_path, dagman = export_workflow(dag, tmp_path)
        assert dag_path.is_file()
        assert (tmp_path / "snr.sub").is_file()
        assert (tmp_path / "hdr.sub").is_file()
        assert len(dagman.jobs) == dag.n

    def test_one_jsdf_per_stage(self, tmp_path):
        export_workflow(airsn(5), tmp_path)
        subs = sorted(p.name for p in tmp_path.glob("*.sub"))
        assert subs == [
            "collect.sub", "hdr.sub", "prep.sub", "smooth.sub", "snr.sub",
        ]

    def test_round_trips_through_parser(self, tmp_path):
        dag = airsn(6)
        dag_path, _ = export_workflow(dag, tmp_path)
        parsed = parse_dagman_file(dag_path)
        reparsed = parsed.to_dag()
        assert reparsed.n == dag.n
        assert set(
            (reparsed.label(u), reparsed.label(v)) for u, v in reparsed.arcs()
        ) == set((dag.label(u), dag.label(v)) for u, v in dag.arcs())

    def test_unlabelled_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="labelled"):
            export_workflow(Dag(2, [(0, 1)]), tmp_path)

    def test_end_to_end_with_prio_tool(self, tmp_path):
        dag = airsn(8)
        dag_path, _ = export_workflow(dag, tmp_path)
        result = prioritize_dagman_file(dag_path, instrument_jsdfs=True)
        assert len(result.priorities) == dag.n
        assert len(result.instrumented_jsdfs) == 5  # one per stage
        assert "priority = $(jobpriority)" in (tmp_path / "snr.sub").read_text()

    def test_creates_directory(self, tmp_path):
        target = tmp_path / "deep" / "dir"
        export_workflow(airsn(3), target)
        assert (target / "workflow.dag").is_file()

    def test_custom_dag_name(self, tmp_path):
        dag_path, _ = export_workflow(airsn(3), tmp_path, dag_name="a.dag")
        assert dag_path.name == "a.dag"
