"""Tests for the Inspiral generator."""

import pytest

from repro.core.decompose import decompose
from repro.dag.transitive import remove_shortcuts
from repro.workloads.inspiral import inspiral


class TestStructure:
    def test_paper_job_count(self):
        assert inspiral().n == 2988

    def test_job_count_formula(self):
        assert inspiral(n_segments=10, n_groups=2).n == 9 * 10 + 2 + 1

    def test_sources_are_segments_and_vetoes(self):
        d = inspiral(n_segments=10, n_groups=2)
        names = [d.label(u) for u in d.sources()]
        assert all(n.startswith(("sci", "veto")) for n in names)
        assert sum(1 for n in names if n.startswith("sci")) == 10
        assert sum(1 for n in names if n.startswith("veto")) == 10

    def test_single_sink(self):
        d = inspiral(n_segments=10, n_groups=2)
        assert [d.label(u) for u in d.sinks()] == ["sire"]

    def test_coincidence_joins_ring_neighbours(self):
        d = inspiral(n_segments=10, n_groups=2)
        coin0 = d.id_of("coin0000")
        parents = {d.label(p) for p in d.parents(coin0)}
        assert parents == {"insp0000", "veto0000", "df0001"}
        # wraparound
        coin_last = d.id_of("coin0009")
        parents = {d.label(p) for p in d.parents(coin_last)}
        assert parents == {"insp0009", "veto0009", "df0000"}

    def test_no_shortcuts(self):
        d = inspiral(n_segments=12, n_groups=3)
        _, removed = remove_shortcuts(d)
        assert removed == []

    def test_validation(self):
        with pytest.raises(ValueError):
            inspiral(n_segments=1)
        with pytest.raises(ValueError):
            inspiral(n_segments=10, n_groups=11)


class TestNonBipartiteComponent:
    def test_ring_is_one_non_bipartite_component(self):
        d = inspiral(n_segments=24, n_groups=6)
        dec = decompose(d)
        non_bip = [c for c in dec.components if not c.is_bipartite]
        assert len(non_bip) == 1
        assert non_bip[0].size == 6 * 24

    def test_paper_scale_component_over_1000_jobs(self):
        dec = decompose(inspiral())
        non_bip = [c for c in dec.components if not c.is_bipartite]
        assert len(non_bip) == 1
        assert non_bip[0].size == 1920 > 1000
