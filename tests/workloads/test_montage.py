"""Tests for the Montage generator."""

import pytest

from repro.core.decompose import decompose
from repro.workloads.montage import montage


class TestStructure:
    def test_paper_job_count(self):
        assert montage().n == 7881

    def test_job_count_formula(self):
        # 4N + 2D + 2T + 5 with D from the 8-neighborhood grid.
        rows, cols, tiles = 4, 5, 3
        n_img = rows * cols
        n_diff = rows * (cols - 1) + cols * (rows - 1) + 2 * (rows - 1) * (cols - 1)
        d = montage(rows, cols, tiles)
        assert d.n == 4 * n_img + 2 * n_diff + 2 * tiles + 5

    def test_sources_are_raw_images_and_headers(self):
        d = montage(4, 4, 2)
        names = [d.label(u) for u in d.sources()]
        assert all(n.startswith(("raw", "hdr")) for n in names)
        assert sum(1 for n in names if n.startswith("raw")) == 16
        assert sum(1 for n in names if n.startswith("hdr")) == 16

    def test_single_final_sink(self):
        d = montage(4, 4, 2)
        assert [d.label(u) for u in d.sinks()] == ["jpeg_final"]

    def test_background_needs_model_and_header(self):
        d = montage(4, 4, 2)
        parents = {d.label(p) for p in d.parents(d.id_of("background0003"))}
        assert parents == {"bgmodel", "hdr0003"}

    def test_each_diff_has_two_parents(self):
        d = montage(4, 4, 2)
        diffs = [u for u in range(d.n) if d.label(u).startswith("diff")]
        assert diffs and all(d.in_degree(u) == 2 for u in diffs)

    def test_projection_children_counts(self):
        # Corner projections have 3 diffs, interior ones 8.
        d = montage(5, 5, 2)
        degs = sorted(
            d.out_degree(u)
            for u in range(d.n)
            if d.label(u).startswith("project")
        )
        assert degs[0] == 3 and degs[-1] == 8

    def test_validation(self):
        with pytest.raises(ValueError):
            montage(1, 5, 2)
        with pytest.raises(ValueError):
            montage(3, 3, 0)


class TestComponentClaim:
    def test_projection_component_over_1000_jobs(self):
        """Paper: a bipartite component with >1000 jobs, each source with a
        few to about ten children, some shared among sources."""
        d = montage()
        dec = decompose(d)
        big = max(dec.components, key=lambda c: c.size)
        assert big.is_bipartite
        assert big.size == 676 + 2550 > 1000
        assert len(big.nonsinks) == 676

    def test_small_instance_component(self):
        d = montage(6, 6, 4)
        dec = decompose(d)
        big = max(dec.components, key=lambda c: c.size)
        assert big.is_bipartite
        # 36 projections + 2*30 + 2*25 diffs
        assert len(big.nonsinks) == 36
