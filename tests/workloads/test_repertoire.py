"""Tests for the parameterized workflow repertoire."""

import numpy as np
import pytest

from repro.core.prio import prio_schedule
from repro.dag.validate import is_valid_schedule
from repro.workloads.repertoire import (
    StageSpec,
    WorkflowSpec,
    build_workflow,
    sample_spec,
)


class TestStageSpec:
    def test_validation(self):
        with pytest.raises(ValueError, match="width"):
            StageSpec(width=0)
        with pytest.raises(ValueError, match="pattern"):
            StageSpec(width=2, pattern="mesh")
        with pytest.raises(ValueError, match="overlap"):
            StageSpec(width=2, overlap=-1)
        with pytest.raises(ValueError):
            WorkflowSpec(stages=())


class TestPatterns:
    def test_pairwise_equal_widths(self):
        spec = WorkflowSpec(
            stages=(StageSpec(width=4), StageSpec(width=4, pattern="pairwise"))
        )
        dag = build_workflow(spec)
        assert dag.has_arc(dag.id_of("s0_0000"), dag.id_of("s1_0000"))
        assert dag.in_degree(dag.id_of("s1_0002")) == 1

    def test_pairwise_overlap(self):
        spec = WorkflowSpec(
            stages=(
                StageSpec(width=5),
                StageSpec(width=5, pattern="pairwise", overlap=1),
            )
        )
        dag = build_workflow(spec)
        mid = dag.id_of("s1_0002")
        parents = {dag.label(p) for p in dag.parents(mid)}
        assert parents == {"s0_0001", "s0_0002", "s0_0003"}

    def test_gather_partitions_previous(self):
        spec = WorkflowSpec(
            stages=(StageSpec(width=7), StageSpec(width=2, pattern="gather"))
        )
        dag = build_workflow(spec)
        a = dag.in_degree(dag.id_of("s1_0000"))
        b = dag.in_degree(dag.id_of("s1_0001"))
        assert a + b == 7 and abs(a - b) <= 1

    def test_broadcast_caps_fan_in(self):
        spec = WorkflowSpec(
            stages=(
                StageSpec(width=10),
                StageSpec(width=3, pattern="broadcast", fan_in=4),
            ),
            seed=7,
        )
        dag = build_workflow(spec)
        for i in range(3):
            assert dag.in_degree(dag.id_of(f"s1_{i:04d}")) == 4

    def test_banked_sources(self):
        spec = WorkflowSpec(
            stages=(
                StageSpec(width=2),
                StageSpec(width=3, banked_sources=True),
            )
        )
        dag = build_workflow(spec)
        banks = [dag.label(u) for u in dag.sources() if dag.label(u).startswith("bank")]
        assert len(banks) == 3
        assert dag.in_degree(dag.id_of("s1_0000")) == 2  # stage + bank

    def test_deterministic_for_seed(self):
        spec = WorkflowSpec(
            stages=(
                StageSpec(width=8),
                StageSpec(width=8, pattern="broadcast"),
            ),
            seed=13,
        )
        assert build_workflow(spec) == build_workflow(spec)


class TestSampledRepertoire:
    def test_samples_build_and_schedule(self):
        rng = np.random.default_rng(0)
        for _ in range(15):
            spec = sample_spec(rng, max_stages=4, max_width=20)
            dag = build_workflow(spec)
            assert dag.n >= 2
            result = prio_schedule(dag)
            assert is_valid_schedule(dag, result.schedule)

    def test_specs_vary(self):
        rng = np.random.default_rng(1)
        sizes = {build_workflow(sample_spec(rng)).n for _ in range(10)}
        assert len(sizes) > 3
