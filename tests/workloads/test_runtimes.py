"""Tests for per-stage runtime models."""

import numpy as np
import pytest

from repro.dag.graph import Dag
from repro.workloads.airsn import airsn
from repro.workloads.runtimes import (
    AIRSN_STAGE_WEIGHTS,
    stage_runtime_scale,
    workload_runtime_scale,
)


class TestStageRuntimeScale:
    def test_prefix_matching(self):
        dag = airsn(5)
        scale = stage_runtime_scale(dag, AIRSN_STAGE_WEIGHTS)
        assert scale[dag.id_of("snr0000")] == 3.0
        assert scale[dag.id_of("hdr0000")] == 0.2
        assert scale[dag.id_of("collect1")] == 1.5

    def test_longest_prefix_wins(self):
        dag = Dag(2, [(0, 1)], labels=["insp0001", "insp2_0001"])
        scale = stage_runtime_scale(dag, {"insp": 4.0, "insp2": 3.0})
        assert scale.tolist() == [4.0, 3.0]

    def test_default_for_unmatched(self):
        dag = Dag(1, [], labels=["mystery"])
        scale = stage_runtime_scale(dag, {"snr": 2.0}, default=7.0)
        assert scale.tolist() == [7.0]

    def test_unlabelled_rejected(self):
        with pytest.raises(ValueError, match="labelled"):
            stage_runtime_scale(Dag(1, []), {"a": 1.0})

    def test_nonpositive_weight_rejected(self):
        dag = airsn(3)
        with pytest.raises(ValueError, match="positive"):
            stage_runtime_scale(dag, {"snr": 0.0})


class TestWorkloadRuntimeScale:
    @pytest.mark.parametrize(
        "name,factory",
        [
            ("airsn", lambda: airsn(5)),
        ],
    )
    def test_known_workloads(self, name, factory):
        scale = workload_runtime_scale(factory(), name)
        assert (scale > 0).all()

    def test_all_four_models_cover_their_stages(self):
        from repro.workloads import inspiral, montage, sdss

        cases = {
            "inspiral": inspiral(n_segments=4, n_groups=2),
            "montage": montage(3, 3, 2),
            "sdss": sdss(n_fields=3, n_catalogs=2),
        }
        for name, dag in cases.items():
            scale = workload_runtime_scale(dag, name)
            # every stage should be matched by the model, not defaulted —
            # heterogeneity is the point.
            assert len(np.unique(scale)) > 2

    def test_unknown_workload(self):
        with pytest.raises(KeyError, match="runtime model"):
            workload_runtime_scale(airsn(3), "seti")


class TestSimulatorIntegration:
    def test_scaled_runtime_changes_makespan(self):
        from repro.sim.engine import SimParams, make_policy, simulate

        dag = airsn(10)
        params = SimParams(mu_bit=0.5, mu_bs=8.0)
        rng = np.random.default_rng(0)
        base = simulate(dag, make_policy("fifo"), params, rng)
        rng = np.random.default_rng(0)
        scaled = simulate(
            dag,
            make_policy("fifo"),
            params,
            rng,
            runtime_scale=workload_runtime_scale(dag, "airsn"),
        )
        # snr/smooth jobs cost 2-3x: the run must take longer.
        assert scaled.execution_time > base.execution_time

    def test_validation(self):
        from repro.sim.engine import SimParams, make_policy, simulate

        dag = airsn(3)
        params = SimParams(mu_bit=1.0, mu_bs=2.0)
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError, match="one entry per job"):
            simulate(
                dag, make_policy("fifo"), params, rng, runtime_scale=np.ones(2)
            )
        with pytest.raises(ValueError, match="positive"):
            simulate(
                dag,
                make_policy("fifo"),
                params,
                rng,
                runtime_scale=np.zeros(dag.n),
            )
