"""Tests for the SDSS generator."""

import pytest

from repro.core.component import schedule_component
from repro.core.decompose import decompose
from repro.workloads.sdss import sdss


class TestStructure:
    def test_paper_job_count(self):
        assert sdss().n == 48013

    def test_job_count_formula(self):
        assert sdss(n_fields=10, n_catalogs=3).n == 9 * 10 + 3 + 6

    def test_sources_are_field_tables_and_calibrations(self):
        d = sdss(n_fields=8, n_catalogs=2)
        names = [d.label(u) for u in d.sources()]
        assert all(n.startswith(("tsobj", "calib")) for n in names)
        assert sum(1 for n in names if n.startswith("tsobj")) == 8
        assert sum(1 for n in names if n.startswith("calib")) == 8

    def test_bcg_needs_target_and_calibration(self):
        d = sdss(n_fields=8, n_catalogs=2)
        parents = {d.label(p) for p in d.parents(d.id_of("bcg00005"))}
        assert parents == {"target00005", "calib00002"}
        # The final boundary target reuses the last field's frame.
        parents = {d.label(p) for p in d.parents(d.id_of("bcg00016"))}
        assert parents == {"target00016", "calib00007"}

    def test_single_final_sink(self):
        d = sdss(n_fields=8, n_catalogs=2)
        assert [d.label(u) for u in d.sinks()] == ["summary"]

    def test_each_brg_has_three_targets(self):
        d = sdss(n_fields=8, n_catalogs=2)
        for i in range(8):
            assert d.out_degree(d.id_of(f"brg{i:05d}")) == 3

    def test_adjacent_fields_share_one_target(self):
        d = sdss(n_fields=8, n_catalogs=2)
        a = set(d.children(d.id_of("brg00002")))
        b = set(d.children(d.id_of("brg00003")))
        assert len(a & b) == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            sdss(n_fields=0)
        with pytest.raises(ValueError):
            sdss(n_fields=5, n_catalogs=20)


class TestWComponentClaim:
    """Paper: a bipartite component with over 1,500 jobs whose each source
    has three children, some shared among the sources — an (s,3)-W dag."""

    def test_w_component_recognized_small(self):
        d = sdss(n_fields=100, n_catalogs=20)
        dec = decompose(d)
        big = max(dec.components, key=lambda c: c.size)
        sc = schedule_component(d, big)
        assert sc.family == "(100,3)-W"

    def test_w_component_size_small(self):
        d = sdss(n_fields=600, n_catalogs=100)
        dec = decompose(d)
        big = max(dec.components, key=lambda c: c.size)
        assert big.is_bipartite
        assert big.size == 600 + 1201 > 1500
