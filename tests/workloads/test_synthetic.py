"""Tests for synthetic workloads and the registry."""

import pytest

from repro.core.prio import prio_schedule
from repro.dag.validate import is_valid_schedule
from repro.workloads.registry import (
    PAPER_ORDER,
    get_workload,
    paper_workloads,
    workload_names,
)
from repro.workloads.synthetic import (
    family_block,
    random_block_series,
    random_pipeline,
)


class TestRandomPipeline:
    def test_stage_count(self, rng):
        d = random_pipeline(4, (2, 5), 0.4, rng)
        levels = d.longest_path_levels()
        assert max(levels) == 3

    def test_every_nonsource_has_parent(self, rng):
        d = random_pipeline(3, (3, 6), 0.2, rng)
        sources = set(d.sources())
        levels = d.longest_path_levels()
        assert all(levels[u] == 0 for u in sources)

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            random_pipeline(0, (1, 2), 0.5, rng)
        with pytest.raises(ValueError):
            random_pipeline(2, (3, 2), 0.5, rng)


class TestFamilyBlock:
    @pytest.mark.parametrize("kind", ["w", "m", "n", "cycle", "clique"])
    def test_kinds(self, kind):
        d = family_block(kind, 3)
        assert d.n > 0

    def test_unknown_kind(self):
        with pytest.raises(ValueError):
            family_block("star", 3)


class TestRandomBlockSeries:
    def test_prio_schedules_it(self, rng):
        for _ in range(5):
            d = random_block_series(4, 3, rng)
            res = prio_schedule(d)
            assert is_valid_schedule(d, res.schedule)

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            random_block_series(0, 3, rng)
        with pytest.raises(ValueError):
            random_block_series(3, 0, rng)


class TestRegistry:
    def test_paper_order(self):
        assert PAPER_ORDER == ("airsn", "inspiral", "montage", "sdss")

    def test_all_names_resolve_small(self):
        for name in workload_names():
            if name.endswith("-small"):
                d = get_workload(name)
                assert d.n > 0

    def test_unknown_name(self):
        with pytest.raises(KeyError, match="unknown workload"):
            get_workload("seti")

    def test_small_variants_preserve_shape(self):
        a = get_workload("airsn-small")
        assert [a.label(u) for u in a.sinks()] == ["collect2"]
        m = get_workload("montage-small")
        assert "jpeg_final" in {m.label(u) for u in m.sinks()}

    @pytest.mark.slow
    def test_paper_workloads_counts(self):
        sizes = {name: d.n for name, d in paper_workloads().items()}
        assert sizes == {
            "airsn": 773,
            "inspiral": 2988,
            "montage": 7881,
            "sdss": 48013,
        }
