"""Arena-built synthetic dags: fingerprint parity and scale.

The arena generators assemble :class:`CompiledDag` straight from flat
arc arrays — no per-node Python objects — so the grand league can race
policies on 10^5–10^6-job dags.  The load-bearing contract is that an
arena dag is *indistinguishable* from the object-dag build of the same
structure: identical CSR arrays and a byte-for-byte identical
fingerprint (so schedule caching keys agree across the two paths).

The 10^5/10^6-job scale tests are ``slow``-marked and excluded from
tier-1 (``addopts = -m 'not slow'``); run them with ``-m slow``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.dag.graph import Dag
from repro.sim.compile import CompiledDag
from repro.sim.engine import SimParams
from repro.sim.rank import dagps_order, upward_rank_order
from repro.sim.replication import policy_factory, run_replications
from repro.workloads.synthetic import (
    arena_chain_bundle,
    arena_families,
    arena_family,
    arena_fork_join,
    arena_layered,
    compiled_fingerprint,
)


def _object_twin(compiled: CompiledDag) -> Dag:
    """The same structure rebuilt through the object-dag constructor."""
    arcs = [
        (u, int(v))
        for u in range(compiled.n)
        for v in compiled.children[
            compiled.indptr[u] : compiled.indptr[u + 1]
        ]
    ]
    return Dag(compiled.n, arcs, check_acyclic=False)


def _assert_matches_object_path(compiled: CompiledDag):
    twin = _object_twin(compiled)
    assert compiled.fingerprint == twin.fingerprint()
    recompiled = CompiledDag.from_dag(twin)
    assert np.array_equal(compiled.indptr, recompiled.indptr)
    assert np.array_equal(compiled.children, recompiled.children)
    assert np.array_equal(compiled.indegree, recompiled.indegree)


@pytest.mark.parametrize("family", ["layered", "fork-join", "chain-bundle"])
def test_arena_fingerprint_matches_object_dag(family):
    compiled = arena_family(family, 120, rng=np.random.default_rng(11))
    assert compiled.n >= 120
    _assert_matches_object_path(compiled)


def test_arena_layered_every_nonfirst_layer_job_has_a_parent():
    compiled = arena_layered([5, 7, 3], 0.1, np.random.default_rng(0))
    assert (compiled.indegree[5:] >= 1).all()
    assert (compiled.indegree[:5] == 0).all()
    _assert_matches_object_path(compiled)


def test_arena_fork_join_shape():
    compiled = arena_fork_join(3, 4)
    assert compiled.n == 3 * 6
    # Sources: block 0's source only; every other block's source is fed
    # by the previous sink.
    assert int((compiled.indegree == 0).sum()) == 1
    _assert_matches_object_path(compiled)


def test_arena_chain_bundle_shape():
    compiled = arena_chain_bundle(4, 5)
    assert compiled.n == 20
    assert int((compiled.indegree == 0).sum()) == 4
    _assert_matches_object_path(compiled)


def test_arena_deduplicates_and_sorts_arcs():
    from repro.workloads.synthetic import _arena_from_arcs

    us = np.array([2, 0, 0, 1, 0])
    vs = np.array([3, 1, 2, 3, 1])  # (0, 1) twice, unordered
    compiled = _arena_from_arcs(4, us, vs)
    assert compiled.indptr.tolist() == [0, 2, 3, 4, 4]
    assert compiled.children.tolist() == [1, 2, 3, 3]
    twin = Dag(4, [(0, 1), (0, 2), (1, 3), (2, 3)])
    assert compiled.fingerprint == twin.fingerprint()


def test_arena_rejects_backward_and_out_of_range_arcs():
    from repro.workloads.synthetic import _arena_from_arcs

    with pytest.raises(ValueError, match="u < v"):
        _arena_from_arcs(3, np.array([1]), np.array([0]))
    with pytest.raises(ValueError, match="out of range"):
        _arena_from_arcs(3, np.array([0]), np.array([5]))
    with pytest.raises(ValueError, match="same length"):
        _arena_from_arcs(3, np.array([0]), np.array([1, 2]))


def test_compiled_fingerprint_empty_dag():
    assert compiled_fingerprint(
        3, np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)
    ) == Dag(3, []).fingerprint()


def test_arena_family_validation():
    with pytest.raises(ValueError, match="unknown arena family"):
        arena_family("torus", 100)
    with pytest.raises(ValueError, match="needs an rng"):
        arena_family("layered", 100)
    with pytest.raises(ValueError, match="at least 4"):
        arena_family("fork-join", 2)
    assert arena_families() == ("layered", "fork-join", "chain-bundle")


@pytest.mark.slow
@pytest.mark.parametrize("family", ["layered", "fork-join", "chain-bundle"])
def test_arena_scales_to_1e5_jobs(family):
    """10^5-job build + rank orders stay in the arena fast path."""
    compiled = arena_family(family, 100_000, rng=np.random.default_rng(1))
    assert compiled.n >= 100_000
    order = upward_rank_order(compiled)
    assert len(order) == compiled.n
    packing = dagps_order(compiled)
    assert len(packing) == compiled.n
    # And the batched kernel races replications over it.
    arrays = run_replications(
        compiled,
        policy_factory("upward-rank", dag=compiled),
        SimParams(mu_bit=1.0, mu_bs=256.0),
        count=2,
        seed=0,
    )
    assert (arrays.execution_time > 0).all()


@pytest.mark.slow
def test_arena_builds_1e6_jobs():
    """10^6 jobs build without per-node Python objects (memory-bounded)."""
    compiled = arena_family("chain-bundle", 1_000_000)
    assert compiled.n >= 1_000_000
    assert len(upward_rank_order(compiled)) == compiled.n
